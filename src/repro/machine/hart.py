"""Per-hart microarchitectural state.

A hart (hardware thread, RISC-V terminology) owns: a pc (which may be
*empty* — a free hart), a one-entry fetch buffer, a rename table over a
per-hart register file, an instruction table (the out-of-order waiting
station), a reorder buffer committing in order, the single writeback
result buffer that serialises multicycle results, and the numbered
``p_swre``/``p_lwre`` result buffers.

The hart also carries the team-protocol links (predecessor/successor used
by the ordered ``p_ret`` commit chain) and the fork reservation flag.
"""

from repro import memmap


class ITEntry:
    """One instruction waiting (or executing) in the instruction table."""

    __slots__ = ("tag", "low", "pc", "vals", "waits", "nwaits", "issued", "rob")

    def __init__(self, tag, low, pc, vals, waits, rob):
        self.tag = tag
        #: the :class:`~repro.machine.lowered.LoweredInstr` at this pc
        self.low = low
        self.pc = pc
        #: source values, aligned with low.reads (None while waiting)
        self.vals = vals
        #: producer tags awaited, aligned with vals (None when value present)
        self.waits = waits
        #: count of outstanding producers — the issue stage's O(1)
        #: readiness check; kept in sync by the writeback broadcast
        self.nwaits = len(waits) - waits.count(None)
        self.issued = False
        #: the paired ROBEntry (created together at rename) — completion
        #: paths mark ``rob.done`` directly instead of scanning by tag
        self.rob = rob

    def sources_ready(self):
        return self.nwaits == 0


class ROBEntry:
    """One reorder-buffer slot."""

    __slots__ = ("tag", "low", "pc", "done", "ret_action")

    def __init__(self, tag, low, pc=None):
        self.tag = tag
        self.low = low
        #: program location (lets snapshot/restore re-bind ``low``)
        self.pc = pc
        self.done = False
        #: for p_ret: ("exit"|"wait"|"end"|"join", join_hart, join_addr)
        self.ret_action = None


class ResultBuffer:
    """The hart's single writeback buffer (one in-flight result)."""

    __slots__ = ("busy", "tag", "reg", "value", "ready_at", "rob")

    def __init__(self):
        self.busy = False
        self.tag = None
        self.reg = 0
        self.value = None
        self.ready_at = 0
        #: ROBEntry of the occupying producer (writeback marks it done)
        self.rob = None

    def occupy(self, tag, reg, rob):
        self.busy = True
        self.tag = tag
        self.reg = reg
        self.value = None
        self.ready_at = 0
        self.rob = rob

    def fill(self, value, ready_at):
        self.value = value & 0xFFFFFFFF
        self.ready_at = ready_at

    def release(self):
        self.busy = False
        self.tag = None
        self.value = None
        self.rob = None


class Hart:
    """All state of one hardware thread."""

    __slots__ = (
        "core", "index", "gid",
        "regs", "rename",
        "pc", "awaiting_nextpc", "fetch_ready_at", "syncm_block",
        "fetch_buf",
        "it", "rob", "rb",
        "re_buffers", "re_waiters",
        "outstanding_mem",
        "reserved", "waiting_join", "pending_join",
        "pred", "pred_done", "succ", "fork_tokens",
        "stats",
    )

    def __init__(self, core, index, num_result_buffers, stats):
        self.core = core
        self.index = index
        self.gid = core.index * memmap.HARTS_PER_CORE + index
        self.regs = [0] * 32
        self.rename = [None] * 32
        self.pc = None
        self.awaiting_nextpc = False
        self.fetch_ready_at = 0
        self.syncm_block = False
        self.fetch_buf = None
        self.it = []
        self.rob = []
        self.rb = ResultBuffer()
        self.re_buffers = [None] * num_result_buffers
        #: per-slot FIFO of parked p_swre deliveries (flow control: a
        #: send that found the slot occupied waits here for the drain
        #: wakeup instead of busy-retrying every cycle)
        self.re_waiters = [[] for _ in range(num_result_buffers)]
        self.outstanding_mem = 0
        self.reserved = False
        self.waiting_join = False
        self.pending_join = None
        #: team-protocol links are hart gids (ints), never object
        #: references — the linked hart may live in another shard
        self.pred = None
        self.pred_done = False
        self.succ = None
        #: gids granted by the next core's fork_req handler, consumed in
        #: FIFO order when this hart's p_fn instructions issue
        self.fork_tokens = []
        self.stats = stats

    # ---- lifecycle --------------------------------------------------------

    def is_free(self):
        """Can this hart be allocated by p_fc/p_fn?"""
        return (
            self.pc is None
            and not self.reserved
            and not self.waiting_join
            and self.fetch_buf is None
            and not self.it
            and not self.rob
            and not self.rb.busy
        )

    def is_idle(self):
        """No work at all (used for deadlock detection)."""
        return (
            self.pc is None
            and self.fetch_buf is None
            and not self.it
            and not self.rob
            and not self.rb.busy
            and self.outstanding_mem == 0
        )

    def reserve_for_fork(self, parent_gid):
        """Allocation by p_fc/p_fn: reset protocol state, set initial sp.

        The parent's ``succ`` link is set by the *parent's* domain when
        it consumes the fork result (p_fc execute or the granted token),
        not here — this side only records its predecessor.
        """
        self.reserved = True
        self.rename = [None] * 32
        self.regs[2] = memmap.hart_initial_sp(self.index)  # sp
        self.re_buffers = [None] * len(self.re_buffers)
        self.pred = parent_gid
        self.pred_done = False

    def start(self, pc, cycle):
        """Begin fetching at *pc* (fork start or join resume).

        Also re-activates the owning core in the run loop's gating set —
        this is the single idle→runnable transition a hart can make.
        """
        self.pc = pc
        self.reserved = False
        self.waiting_join = False
        self.awaiting_nextpc = False
        self.syncm_block = False
        self.fetch_ready_at = cycle + 1
        self.core.activate()

    def end(self):
        """The hart ends (p_ret cases 2 and 4): becomes free."""
        self.pc = None
        self.awaiting_nextpc = False
        self.syncm_block = False
        self.reserved = False
        self.waiting_join = False

    # ---- snapshot/restore --------------------------------------------------

    def state_dict(self):
        """All architectural and microarchitectural state, as plain data.

        Entry identity: an ITEntry and its paired ROBEntry share a tag,
        and the writeback buffer names its producer by the same tag, so
        cross-references are serialized as tags and re-linked by
        :meth:`load_state_dict`.  ``low`` fields are re-derived from the
        machine's lowered program via each entry's pc.
        """
        rb = self.rb
        return {
            "regs": list(self.regs),
            "rename": list(self.rename),
            "pc": self.pc,
            "awaiting_nextpc": self.awaiting_nextpc,
            "fetch_ready_at": self.fetch_ready_at,
            "syncm_block": self.syncm_block,
            "fetch_buf": None if self.fetch_buf is None else self.fetch_buf[0],
            "it": [
                {
                    "tag": e.tag, "pc": e.pc, "vals": list(e.vals),
                    "waits": list(e.waits), "issued": e.issued,
                }
                for e in self.it
            ],
            "rob": [
                {
                    "tag": e.tag, "pc": e.pc, "done": e.done,
                    "ret_action": None if e.ret_action is None
                    else list(e.ret_action),
                }
                for e in self.rob
            ],
            "rb": {
                "busy": rb.busy, "tag": rb.tag, "reg": rb.reg,
                "value": rb.value, "ready_at": rb.ready_at,
            },
            "re_buffers": list(self.re_buffers),
            "re_waiters": [
                [list(desc) for desc in waiters] for waiters in self.re_waiters
            ],
            "outstanding_mem": self.outstanding_mem,
            "reserved": self.reserved,
            "waiting_join": self.waiting_join,
            "pending_join": self.pending_join,
            "pred": self.pred,
            "pred_done": self.pred_done,
            "succ": self.succ,
            "fork_tokens": list(self.fork_tokens),
        }

    def load_state_dict(self, state):
        machine = self.core.machine
        lowered = machine.lowered_at
        self.regs = list(state["regs"])
        self.rename = list(state["rename"])
        self.pc = state["pc"]
        self.awaiting_nextpc = state["awaiting_nextpc"]
        self.fetch_ready_at = state["fetch_ready_at"]
        self.syncm_block = state["syncm_block"]
        fetch_pc = state["fetch_buf"]
        self.fetch_buf = None if fetch_pc is None else (fetch_pc, lowered(fetch_pc))
        self.rob = []
        rob_by_tag = {}
        for entry_state in state["rob"]:
            rob_entry = ROBEntry(
                entry_state["tag"], lowered(entry_state["pc"]), entry_state["pc"])
            rob_entry.done = entry_state["done"]
            if entry_state["ret_action"] is not None:
                rob_entry.ret_action = tuple(entry_state["ret_action"])
            self.rob.append(rob_entry)
            rob_by_tag[rob_entry.tag] = rob_entry
        self.it = []
        for entry_state in state["it"]:
            entry = ITEntry(
                entry_state["tag"], lowered(entry_state["pc"]),
                entry_state["pc"], list(entry_state["vals"]),
                list(entry_state["waits"]), rob_by_tag[entry_state["tag"]])
            entry.issued = entry_state["issued"]
            self.it.append(entry)
        rb_state = state["rb"]
        rb = self.rb
        rb.busy = rb_state["busy"]
        rb.tag = rb_state["tag"]
        rb.reg = rb_state["reg"]
        rb.value = rb_state["value"]
        rb.ready_at = rb_state["ready_at"]
        rb.rob = rob_by_tag[rb.tag] if rb.busy else None
        self.re_buffers = list(state["re_buffers"])
        self.re_waiters = [
            [tuple(desc) for desc in waiters] for waiters in state["re_waiters"]
        ]
        self.outstanding_mem = state["outstanding_mem"]
        self.reserved = state["reserved"]
        self.waiting_join = state["waiting_join"]
        self.pending_join = state["pending_join"]
        self.pred = state["pred"]
        self.pred_done = state["pred_done"]
        self.succ = state["succ"]
        self.fork_tokens = list(state["fork_tokens"])

    # ---- rename-side helpers ----------------------------------------------

    def read_source(self, reg):
        """(value, wait_tag): the committed value or the producer tag."""
        if reg == 0:
            return 0, None
        tag = self.rename[reg]
        if tag is None:
            return self.regs[reg], None
        return None, tag

    def writeback(self, tag, reg, value):
        """Apply a completed result to the register file and wake waiters.

        The architectural register is updated only when this producer is
        still the *latest* rename of the register; an older producer that
        writes back after a newer one (possible with out-of-order issue)
        must not clobber the newer value.  Its value still reaches the
        consumers that captured its tag, via the broadcast below.
        """
        value &= 0xFFFFFFFF
        if reg != 0 and self.rename[reg] == tag:
            self.regs[reg] = value
            self.rename[reg] = None
        for entry in self.it:
            waits = entry.waits
            if tag in waits:  # C-level scan first; a hit is the rare case
                for slot, wait in enumerate(waits):
                    if wait == tag:
                        waits[slot] = None
                        entry.vals[slot] = value
                        entry.nwaits -= 1
