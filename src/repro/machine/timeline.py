"""ASCII timeline of hart activity — the paper's figure 3, observed.

Builds, from a machine's event trace, one lane per hart showing when it
was started (fork/join), what protocol events it emitted, and when it
ended.  Useful both for debugging team protocols and for *seeing* the
diagonal team-expansion pattern of Deterministic OpenMP:

    hart  0 F======================================JR=====X
    hart  1  s====E
    hart  2   s====E
    ...

Legend: ``F`` boot/fork origin, ``s`` started, ``E`` ended, ``J`` join
received, ``R`` resumed, ``X`` exit.
"""

from repro import memmap

_START_KINDS = {"start", "join"}


class HartLane:
    __slots__ = ("gid", "intervals", "marks")

    def __init__(self, gid):
        self.gid = gid
        self.intervals = []   # (begin, end) activity spans
        self.marks = []       # (cycle, char)


def build_lanes(trace_events, num_harts, harts_per_core=None):
    """Derive per-hart activity lanes from a trace event list.

    *harts_per_core* maps a ``(core, hart)`` event pair to its global
    hart id; pass the machine's param (``print_timeline`` does) — the
    memmap default only fits default-shaped machines.
    """
    if harts_per_core is None:
        harts_per_core = memmap.HARTS_PER_CORE
    lanes = [HartLane(gid) for gid in range(num_harts)]
    open_since = {}

    def gid_of(core, hart):
        return core * harts_per_core + hart

    open_since[0] = 0  # the boot hart runs from cycle 0
    lanes[0].marks.append((0, "F"))

    for cycle, core, hart, kind, _payload in trace_events:
        gid = gid_of(core, hart)
        if kind == "start":
            open_since.setdefault(gid, cycle)
            lanes[gid].marks.append((cycle, "s"))
        elif kind == "join":
            lanes[gid].marks.append((cycle, "J"))
            open_since.setdefault(gid, cycle)
        elif kind == "p_ret":
            begin = open_since.pop(gid, cycle)
            lanes[gid].intervals.append((begin, cycle))
            lanes[gid].marks.append(
                (cycle, {"exit": "X", "wait": "W", "end": "E",
                         "join": "E"}.get(_payload, "E")))
        elif kind == "fork":
            lanes[gid].marks.append((cycle, "f"))
    last = max((e[0] for e in trace_events), default=0)
    for gid, begin in open_since.items():
        lanes[gid].intervals.append((begin, last))
    return lanes, last


def render(trace_events, num_harts, width=72, harts_per_core=None):
    """Render the timeline as text lines."""
    lanes, last = build_lanes(trace_events, num_harts, harts_per_core)
    span = max(last, 1)
    scale = (width - 1) / span

    def col(cycle):
        return min(width - 1, int(cycle * scale))

    lines = ["cycles 0..%d, one column ~ %.0f cycles" % (last, 1 / scale if scale else 0)]
    for lane in lanes:
        if not lane.intervals and not lane.marks:
            continue
        row = [" "] * width
        for begin, end in lane.intervals:
            for position in range(col(begin), col(end) + 1):
                row[position] = "="
        for cycle, char in lane.marks:
            row[col(cycle)] = char
        lines.append("hart %3d |%s|" % (lane.gid, "".join(row)))
    return lines


def print_timeline(machine, width=72):
    """Convenience: render a finished machine's trace (must be enabled)."""
    for line in render(machine.trace.events, machine.params.num_harts, width,
                       machine.params.harts_per_core):
        print(line)
