"""Memory banks and their access ports.

Per the paper (fig. 13) each core owns three banks: code, local (the four
hart stacks) and one slice of shared memory.  Shared banks have two ports
— one for the owning core, one fed by the router tree — each serving one
access per cycle.  Ports are modelled as monotonic reservation cursors,
which both creates contention and guarantees FIFO ordering of accesses
that share a port (the property compiled code relies on for same-address
store→load pairs issued in order; see DESIGN.md).
"""

from repro import memmap


class Bank:
    """One byte-addressable memory bank."""

    __slots__ = ("base", "data", "name")

    def __init__(self, base, size, name):
        self.base = base
        self.data = bytearray(size)
        self.name = name

    def _offset(self, addr, width):
        offset = addr - self.base
        if offset < 0 or offset + width > len(self.data):
            raise IndexError(
                "address 0x%x (+%d) outside bank %s [0x%x, 0x%x)"
                % (addr, width, self.name, self.base, self.base + len(self.data))
            )
        return offset

    def read(self, addr, width):
        offset = self._offset(addr, width)
        return int.from_bytes(self.data[offset : offset + width], "little")

    def write(self, addr, value, width):
        offset = self._offset(addr, width)
        self.data[offset : offset + width] = (value & ((1 << (8 * width)) - 1)).to_bytes(
            width, "little"
        )

    def load_image(self, offset, payload):
        if offset + len(payload) > len(self.data):
            raise IndexError("image does not fit in bank %s" % self.name)
        self.data[offset : offset + len(payload)] = payload

    def state_dict(self):
        return {"name": self.name, "base": self.base, "data": bytes(self.data)}

    def load_state_dict(self, state):
        if len(state["data"]) != len(self.data):
            raise ValueError(
                "bank %s snapshot size %d != configured size %d"
                % (self.name, len(state["data"]), len(self.data))
            )
        self.data[:] = state["data"]


class Port:
    """A one-access-per-cycle reservation cursor."""

    __slots__ = ("next_free",)

    def __init__(self):
        self.next_free = 0

    def reserve(self, earliest):
        """Reserve the first slot at or after *earliest*; returns its cycle."""
        slot = max(earliest, self.next_free)
        self.next_free = slot + 1
        return slot

    def state_dict(self):
        return {"next_free": self.next_free}

    def load_state_dict(self, state):
        self.next_free = state["next_free"]


class CoreMemory:
    """The three banks of one core, plus their ports."""

    def __init__(self, core_index, params):
        self.core_index = core_index
        self.local = Bank(memmap.LOCAL_BASE, memmap.LOCAL_SIZE, "local%d" % core_index)
        self.shared = Bank(
            memmap.global_bank_base(core_index),
            memmap.GLOBAL_BANK_SIZE,
            "shared%d" % core_index,
        )
        #: local bank port (stacks + CV areas, all four harts)
        self.local_port = Port()
        #: owning core's port into its shared bank
        self.shared_local_port = Port()
        #: router-side port into the shared bank
        self.shared_router_port = Port()

    def state_dict(self):
        return {
            "local": self.local.state_dict(),
            "shared": self.shared.state_dict(),
            "local_port": self.local_port.state_dict(),
            "shared_local_port": self.shared_local_port.state_dict(),
            "shared_router_port": self.shared_router_port.state_dict(),
        }

    def load_state_dict(self, state):
        self.local.load_state_dict(state["local"])
        self.shared.load_state_dict(state["shared"])
        self.local_port.load_state_dict(state["local_port"])
        self.shared_local_port.load_state_dict(state["shared_local_port"])
        self.shared_router_port.load_state_dict(state["shared_router_port"])
