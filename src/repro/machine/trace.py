"""Cycle event trace.

When enabled, the machine records one tuple per architectural event:
``(cycle, core, hart, kind, payload)``.  The determinism experiments
(paper claim: "at cycle 467171, core 55, hart 2 sends a memory request to
load address 106688 from memory bank 13") simply compare whole traces of
repeated runs for equality.

Events are buffered per *recording domain* (the core whose event loop
produced the line — usually, but not always, the ``core`` field of the
tuple) and merged on demand, ordered by ``(cycle, domain, buffer order)``.
A domain records its own cycles monotonically, so every buffer is already
cycle-sorted and the merge is a stable k-way merge.  The space-sharded
engine (``repro.parsim``) relies on this: each worker fills only the
buffers of the domains it owns, the parent concatenates them, and the
merged event list — hence the golden digest — is byte-identical to a
single-process run.
"""

import heapq


class Trace:
    """An in-memory event trace with optional kind filtering."""

    def __init__(self, enabled=False, kinds=None):
        self.enabled = enabled
        #: restrict recording to these kinds (None = all)
        self.kinds = frozenset(kinds) if kinds is not None else None
        self._buffers = {}
        self._merged = None

    @property
    def events(self):
        """Merged event list, ordered by (cycle, recording domain)."""
        if self._merged is None:
            buffers = [self._buffers[d] for d in sorted(self._buffers)]
            self._merged = list(heapq.merge(*buffers, key=lambda e: e[0]))
        return self._merged

    def state_dict(self):
        return {
            "enabled": self.enabled,
            "kinds": None if self.kinds is None else sorted(self.kinds),
            "buffers": [
                [domain, [list(event) for event in self._buffers[domain]]]
                for domain in sorted(self._buffers)
            ],
        }

    def load_state_dict(self, state):
        self.enabled = state["enabled"]
        self.kinds = (
            None if state["kinds"] is None else frozenset(state["kinds"]))
        self._buffers = {
            domain: [tuple(event) for event in events]
            for domain, events in state["buffers"]
        }
        self._merged = None

    def domain_state_dict(self, domain):
        """One domain's buffer (shard gathering)."""
        return [list(event) for event in self._buffers.get(domain, [])]

    def load_domain_state_dict(self, domain, events):
        if events:
            self._buffers[domain] = [tuple(event) for event in events]
        else:
            self._buffers.pop(domain, None)
        self._merged = None

    def record(self, cycle, core, hart, kind, payload, domain=None):
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        key = core if domain is None else domain
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = self._buffers[key] = []
        buffer.append((cycle, core, hart, kind, payload))
        self._merged = None

    def __len__(self):
        return sum(len(b) for b in self._buffers.values())

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind):
        """All events of one kind, in merged order."""
        return [event for event in self.events if event[3] == kind]

    def formatted(self, limit=None):
        """Human-readable lines in the paper's phrasing."""
        lines = []
        for cycle, core, hart, kind, payload in self.events[:limit]:
            lines.append(
                "at cycle %d, core %d, hart %d: %s %s" % (cycle, core, hart, kind, payload)
            )
        return lines
