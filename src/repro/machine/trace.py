"""Cycle event trace.

When enabled, the machine records one tuple per architectural event:
``(cycle, core, hart, kind, payload)``.  The determinism experiments
(paper claim: "at cycle 467171, core 55, hart 2 sends a memory request to
load address 106688 from memory bank 13") simply compare whole traces of
repeated runs for equality.
"""


class Trace:
    """An in-memory event trace with optional kind filtering."""

    def __init__(self, enabled=False, kinds=None):
        self.enabled = enabled
        #: restrict recording to these kinds (None = all)
        self.kinds = frozenset(kinds) if kinds is not None else None
        self.events = []

    def state_dict(self):
        return {
            "enabled": self.enabled,
            "kinds": None if self.kinds is None else sorted(self.kinds),
            "events": [list(event) for event in self.events],
        }

    def load_state_dict(self, state):
        self.enabled = state["enabled"]
        self.kinds = (
            None if state["kinds"] is None else frozenset(state["kinds"]))
        self.events = [tuple(event) for event in state["events"]]

    def record(self, cycle, core, hart, kind, payload):
        if not self.enabled:
            return
        if self.kinds is not None and kind not in self.kinds:
            return
        self.events.append((cycle, core, hart, kind, payload))

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind):
        """All events of one kind, in order."""
        return [event for event in self.events if event[3] == kind]

    def formatted(self, limit=None):
        """Human-readable lines in the paper's phrasing."""
        lines = []
        for cycle, core, hart, kind, payload in self.events[:limit]:
            lines.append(
                "at cycle %d, core %d, hart %d: %s %s" % (cycle, core, hart, kind, payload)
            )
        return lines
