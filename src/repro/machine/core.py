"""One LBP core: four harts moved by a five-stage out-of-order pipeline.

Stage contract (paper §5.2): **each stage selects one eligible hart per
cycle** — one fetch, one decode/rename, one issue, one writeback, one
commit — with deterministic rotating priority.  There is no branch
predictor: a hart is suspended after every fetch until its next pc is
known (at decode for straight-line code and direct jumps, at issue for
branches and indirect jumps), so multithreading — not speculation — fills
the pipeline.
"""

from repro.isa.semantics import (
    ALU_OPS,
    BRANCH_OPS,
    join_hart,
    p_merge_value,
    p_set_value,
)
from repro.isa.spec import InstrClass
from repro.machine.hart import Hart, ITEntry, ROBEntry
from repro.machine.memory import CoreMemory

_C = InstrClass


class Core:
    """One core: pipeline stages, four harts, three banks."""

    def __init__(self, index, machine):
        self.index = index
        self.machine = machine
        params = machine.params
        self.mem = CoreMemory(index, params)
        self.harts = [
            Hart(self, h, params.num_result_buffers,
                 machine.stats.harts[index][h])
            for h in range(params.harts_per_core)
        ]
        # rotating-priority pointers, one per stage
        self._rr = {"fetch": 0, "rename": 0, "issue": 0, "wb": 0, "commit": 0}

    # ---- hart selection ----------------------------------------------------

    def _rotate(self, stage, predicate):
        """Pick the first hart satisfying *predicate*, rotating fairly."""
        start = self._rr[stage]
        count = len(self.harts)
        for step in range(count):
            hart = self.harts[(start + step) % count]
            if predicate(hart):
                self._rr[stage] = (hart.index + 1) % count
                return hart
        return None

    def alloc_free_hart(self):
        """Lowest-numbered free hart, or None (deterministic)."""
        for hart in self.harts:
            if hart.is_free():
                return hart
        return None

    # ---- fetch -------------------------------------------------------------

    def _can_fetch(self, hart):
        return (
            hart.pc is not None
            and not hart.awaiting_nextpc
            and not hart.syncm_block
            and hart.fetch_buf is None
            and not hart.reserved
            and self.machine.cycle >= hart.fetch_ready_at
        )

    def stage_fetch(self):
        harts = self.harts
        start = self._rr["fetch"]
        cycle = self.machine.cycle
        hart = None
        for step in range(4):
            candidate = harts[(start + step) & 3]
            if (
                candidate.pc is not None
                and not candidate.awaiting_nextpc
                and not candidate.syncm_block
                and candidate.fetch_buf is None
                and not candidate.reserved
                and cycle >= candidate.fetch_ready_at
            ):
                hart = candidate
                break
        if hart is None:
            return
        self._rr["fetch"] = (hart.index + 1) & 3
        ins = self.machine.fetch_instruction(hart.pc, hart)
        hart.fetch_buf = (hart.pc, ins)
        hart.awaiting_nextpc = True  # suspended until next pc is known

    # ---- decode / rename ---------------------------------------------------

    def _can_rename(self, hart):
        return (
            hart.fetch_buf is not None
            and len(hart.rob) < self.machine.params.rob_size
        )

    def stage_rename(self):
        harts = self.harts
        start = self._rr["rename"]
        rob_size = self.machine.params.rob_size
        hart = None
        for step in range(4):
            candidate = harts[(start + step) & 3]
            if candidate.fetch_buf is not None and len(candidate.rob) < rob_size:
                hart = candidate
                break
        if hart is None:
            return
        self._rr["rename"] = (hart.index + 1) & 3
        pc, ins = hart.fetch_buf
        hart.fetch_buf = None
        spec = ins.spec
        tag = self.machine.next_tag()

        vals, waits = [], []
        for field in spec.reads:
            reg = ins.rs1 if field == "rs1" else ins.rs2
            value, wait = hart.read_source(reg)
            vals.append(value)
            waits.append(wait)

        entry = ITEntry(tag, ins, pc, vals, waits)
        hart.it.append(entry)
        hart.rob.append(ROBEntry(tag, ins))
        if spec.writes_rd and ins.rd != 0:
            hart.rename[ins.rd] = tag

        # next-pc determination (fetch resumes when it is known)
        cls = spec.cls
        cycle = self.machine.cycle
        if cls == _C.BRANCH or cls == _C.JALR or cls == _C.P_JALR:
            pass  # resolved at issue; hart stays suspended
        elif cls == _C.JAL or cls == _C.P_JAL:
            hart.pc = (pc + ins.imm) & 0xFFFFFFFF
            hart.awaiting_nextpc = False
            hart.fetch_ready_at = cycle + 1
        elif cls == _C.SYSTEM:
            hart.pc = None  # halts (ebreak) or traps (ecall) at commit
            hart.awaiting_nextpc = False
        else:
            hart.pc = pc + 4
            hart.awaiting_nextpc = False
            hart.fetch_ready_at = cycle + 1
            if cls == _C.P_SYNCM:
                hart.syncm_block = True

    # ---- issue / execute ---------------------------------------------------

    def _entry_ready(self, hart, entry, older_store_pending):
        if not entry.sources_ready():
            return False
        ins = entry.ins
        spec = ins.spec
        cls = spec.cls
        if spec.writes_rd and ins.rd != 0 and hart.rb.busy:
            return False
        if cls == _C.LOAD or cls == _C.P_LWCV:
            # LBP has no load/store queue; the minimal disambiguation we
            # model is: a load waits for all older stores of its hart to
            # have issued (port FIFO then orders same-bank accesses).
            return not older_store_pending
        if cls == _C.P_LWRE:
            index = ins.imm % len(hart.re_buffers)
            return hart.re_buffers[index] is not None
        if cls == _C.P_FC:
            return self.alloc_free_hart() is not None
        if cls == _C.P_FN:
            next_core = self.machine.core_after(self)
            if next_core is None:
                # teams only expand along the line of cores (paper §5.1);
                # a fork past the last core can never succeed
                self.machine.error(
                    "p_fn on the last core (hart %d): no next core to fork on"
                    % hart.gid)
                return False
            return next_core.alloc_free_hart() is not None
        if cls == _C.P_SYNCM:
            return entry is hart.it[0] and hart.outstanding_mem == 0
        return True

    def _pick_issue(self, hart):
        """Oldest ready entry of *hart*, or None."""
        older_store_pending = False
        for entry in hart.it:
            if self._entry_ready(hart, entry, older_store_pending):
                return entry
            cls = entry.ins.spec.cls
            if cls == _C.STORE or cls == _C.P_SWCV:
                older_store_pending = True
        return None

    def stage_issue(self):
        harts = self.harts
        start = self._rr["issue"]
        for step in range(4):
            hart = harts[(start + step) & 3]
            if not hart.it:
                continue
            entry = self._pick_issue(hart)
            if entry is None:
                continue
            self._rr["issue"] = (hart.index + 1) & 3
            hart.it.remove(entry)
            entry.issued = True
            self._execute(hart, entry)
            return

    def _rob_entry(self, hart, tag):
        for rob_entry in hart.rob:
            if rob_entry.tag == tag:
                return rob_entry
        raise AssertionError("tag %d not in ROB of hart %d" % (tag, hart.gid))

    def _finish_at(self, hart, entry, value, ready_at):
        """Route a register result through the writeback buffer."""
        ins = entry.ins
        if ins.spec.writes_rd and ins.rd != 0:
            hart.rb.occupy(entry.tag, ins.rd)
            hart.rb.fill(value, ready_at)
        else:
            self._rob_entry(hart, entry.tag).done = True

    def _resolve_pc(self, hart, target):
        hart.pc = target & 0xFFFFFFFF
        hart.awaiting_nextpc = False
        hart.fetch_ready_at = self.machine.cycle + 1

    def _execute(self, hart, entry):
        machine = self.machine
        now = machine.cycle
        ins = entry.ins
        spec = ins.spec
        cls = spec.cls
        vals = entry.vals

        if cls == _C.ALU or cls == _C.MULDIV:
            a = vals[0]
            b = vals[1] if len(vals) == 2 else ins.imm
            value = ALU_OPS[ins.mnemonic](a, b)
            self._finish_at(hart, entry, value, now + machine.params.latency_for(spec))
        elif cls == _C.LUI:
            self._finish_at(hart, entry, (ins.imm << 12) & 0xFFFFFFFF, now + 1)
        elif cls == _C.AUIPC:
            self._finish_at(hart, entry, (entry.pc + (ins.imm << 12)) & 0xFFFFFFFF, now + 1)
        elif cls == _C.JAL:
            self._finish_at(hart, entry, entry.pc + 4, now + 1)
        elif cls == _C.JALR:
            self._resolve_pc(hart, (vals[0] + ins.imm) & 0xFFFFFFFE)
            self._finish_at(hart, entry, entry.pc + 4, now + 1)
        elif cls == _C.BRANCH:
            taken = BRANCH_OPS[ins.mnemonic](vals[0], vals[1])
            self._resolve_pc(hart, entry.pc + ins.imm if taken else entry.pc + 4)
            self._rob_entry(hart, entry.tag).done = True
        elif cls == _C.LOAD:
            addr = (vals[0] + ins.imm) & 0xFFFFFFFF
            machine.schedule_load(self, hart, entry.tag, ins, addr)
            hart.stats.loads += 1
        elif cls == _C.STORE:
            addr = (vals[0] + ins.imm) & 0xFFFFFFFF
            machine.schedule_store(self, hart, entry.tag, ins, addr, vals[1])
            hart.stats.stores += 1
        elif cls == _C.SYSTEM or cls == _C.FENCE:
            self._rob_entry(hart, entry.tag).done = True
        elif cls == _C.P_SET:
            value = p_set_value(vals[0], self.index, hart.index)
            self._finish_at(hart, entry, value, now + 1)
        elif cls == _C.P_MERGE:
            self._finish_at(hart, entry, p_merge_value(vals[0], vals[1]), now + 1)
        elif cls == _C.P_FC or cls == _C.P_FN:
            target_core = self if cls == _C.P_FC else machine.core_after(self)
            target = target_core.alloc_free_hart()
            target.reserve_for_fork(hart)
            hart.stats.forks += 1
            machine.stats.forks += 1
            machine.trace.record(now, self.index, hart.index, "fork",
                                 "allocate hart %d" % target.gid)
            self._finish_at(hart, entry, target.gid, now + 1)
        elif cls == _C.P_SWCV:
            machine.schedule_cv_write(
                self, hart, entry.tag, vals[0] & 0xFFFF, ins.imm, vals[1])
        elif cls == _C.P_LWCV:
            addr = machine.cv_address(hart, ins.imm)
            machine.schedule_load(self, hart, entry.tag, ins, addr)
        elif cls == _C.P_SWRE:
            machine.schedule_re_send(
                self, hart, entry.tag, vals[0] & 0xFFFF, ins.imm, vals[1])
        elif cls == _C.P_LWRE:
            index = ins.imm % len(hart.re_buffers)
            value = hart.re_buffers[index]
            hart.re_buffers[index] = None
            self._finish_at(hart, entry, value, now + 1)
        elif cls == _C.P_JAL:
            # next pc already resolved at decode; send pc+4, clear rd
            machine.send_start_pc(self, hart, vals[0] & 0xFFFF, entry.pc + 4)
            self._finish_at(hart, entry, 0, now + 1)
        elif cls == _C.P_JALR:
            if ins.rd == 0:
                self._execute_p_ret(hart, entry)
            else:
                machine.send_start_pc(self, hart, vals[0] & 0xFFFF, entry.pc + 4)
                self._resolve_pc(hart, vals[1] & 0xFFFFFFFE)
                self._finish_at(hart, entry, 0, now + 1)
        elif cls == _C.P_SYNCM:
            hart.syncm_block = False
            self._rob_entry(hart, entry.tag).done = True
        else:
            raise AssertionError("unhandled instruction class %r" % (cls,))

    def _execute_p_ret(self, hart, entry):
        """p_ret = p_jalr zero, ra, t0: decide the ending case (paper §4)."""
        ra, t0 = entry.vals
        if ra == 0:
            if t0 == 0xFFFFFFFF:
                action = ("exit", None, None)
            elif join_hart(t0) == hart.gid:
                action = ("wait", None, None)
            else:
                action = ("end", None, None)
        else:
            action = ("join", join_hart(t0), ra)
        rob_entry = self._rob_entry(hart, entry.tag)
        rob_entry.ret_action = action
        rob_entry.done = True
        # no further fetch on this hart until a join or a new fork
        hart.pc = None
        hart.awaiting_nextpc = False

    # ---- writeback ---------------------------------------------------------

    def _can_writeback(self, hart):
        rb = hart.rb
        return rb.busy and rb.value is not None and rb.ready_at <= self.machine.cycle

    def stage_writeback(self):
        harts = self.harts
        start = self._rr["wb"]
        cycle = self.machine.cycle
        for step in range(4):
            hart = harts[(start + step) & 3]
            rb = hart.rb
            if rb.busy and rb.value is not None and rb.ready_at <= cycle:
                self._rr["wb"] = (hart.index + 1) & 3
                hart.writeback(rb.tag, rb.reg, rb.value)
                self._rob_entry(hart, rb.tag).done = True
                rb.release()
                return

    # ---- commit ------------------------------------------------------------

    def _can_commit(self, hart):
        if not hart.rob or not hart.rob[0].done:
            return False
        head = hart.rob[0]
        if head.ret_action is not None:
            # the ordered-release barrier: wait for the predecessor's
            # ending-hart signal (if this hart was forked and the link is
            # still pending), and for our own memory writes to be visible
            if hart.pred is not None and not hart.pred_done:
                return False
            if hart.outstanding_mem != 0:
                return False
        return True

    def stage_commit(self):
        harts = self.harts
        start = self._rr["commit"]
        hart = None
        for step in range(4):
            candidate = harts[(start + step) & 3]
            if candidate.rob and candidate.rob[0].done \
                    and self._can_commit(candidate):
                hart = candidate
                break
        if hart is None:
            return
        self._rr["commit"] = (hart.index + 1) & 3
        head = hart.rob.pop(0)
        hart.stats.retired += 1
        machine = self.machine
        if head.ins.mnemonic == "ebreak":
            machine.halt("ebreak")
            return
        if head.ins.mnemonic == "ecall":
            machine.error("ecall is not supported on bare-metal LBP")
            return
        if head.ret_action is not None:
            self._commit_p_ret(hart, head)

    def _commit_p_ret(self, hart, head):
        machine = self.machine
        now = machine.cycle
        kind, join_gid, join_addr = head.ret_action
        machine.trace.record(now, self.index, hart.index, "p_ret", kind)
        # consume the predecessor link, propagate the ending signal
        hart.pred = None
        hart.pred_done = False
        if hart.succ is not None:
            machine.send_ending_signal(self, hart, hart.succ)
            hart.succ = None
        if kind == "exit":
            machine.halt("exit")
        elif kind == "wait":
            hart.pc = None
            hart.waiting_join = True
            if hart.pending_join is not None:
                addr = hart.pending_join
                hart.pending_join = None
                hart.start(addr, now)
        elif kind == "end":
            hart.end()
        elif kind == "join":
            hart.end()
            machine.stats.joins += 1
            if join_gid == hart.gid:
                # single-member team: the last member is the join hart —
                # resume directly at the join address
                hart.start(join_addr, now)
            else:
                machine.send_join(self, hart, join_gid, join_addr)
        else:
            raise AssertionError(kind)

    # ---- per-cycle ---------------------------------------------------------

    def tick(self):
        """Run the five stages for one cycle (commit-side first)."""
        busy = False
        for hart in self.harts:
            if hart.pc is not None or hart.rob or hart.fetch_buf is not None:
                busy = True
                break
        if not busy:
            return
        self.stage_commit()
        self.stage_writeback()
        self.stage_issue()
        self.stage_rename()
        self.stage_fetch()

    def any_activity_possible(self):
        """Cheap liveness check for deadlock detection.

        Harts that are merely waiting (for a join, or reserved awaiting a
        start pc) are passive: they only progress through events, so they
        do not count as activity by themselves.
        """
        return any(not hart.is_idle() for hart in self.harts)
