"""One LBP core: four harts moved by a five-stage out-of-order pipeline.

Stage contract (paper §5.2): **each stage selects one eligible hart per
cycle** — one fetch, one decode/rename, one issue, one writeback, one
commit — with deterministic rotating priority.  There is no branch
predictor: a hart is suspended after every fetch until its next pc is
known (at decode for straight-line code and direct jumps, at issue for
branches and indirect jumps), so multithreading — not speculation — fills
the pipeline.

The stages work on :class:`~repro.machine.lowered.LoweredInstr` records
(pre-extracted class, operands, callables) so the per-cycle loop never
re-chases ``Instruction``/spec attributes; see ``machine/lowered.py``.
"""

from repro.isa.semantics import join_hart, p_merge_value, p_set_value
from repro.isa.spec import InstrClass
from repro.machine.hart import Hart, ITEntry, ROBEntry
from repro.machine.memory import CoreMemory
from repro.machine.router import LinkScheduler

_C = InstrClass

# pre-bound int values of the InstrClass members (LoweredInstr.cls is a
# plain int so the dispatch below compares ints, not enum members)
_ALU = int(_C.ALU)
_MULDIV = int(_C.MULDIV)
_LOAD = int(_C.LOAD)
_STORE = int(_C.STORE)
_BRANCH = int(_C.BRANCH)
_JAL = int(_C.JAL)
_JALR = int(_C.JALR)
_LUI = int(_C.LUI)
_AUIPC = int(_C.AUIPC)
_SYSTEM = int(_C.SYSTEM)
_FENCE = int(_C.FENCE)
_P_FC = int(_C.P_FC)
_P_FN = int(_C.P_FN)
_P_SWCV = int(_C.P_SWCV)
_P_LWCV = int(_C.P_LWCV)
_P_SWRE = int(_C.P_SWRE)
_P_LWRE = int(_C.P_LWRE)
_P_JAL = int(_C.P_JAL)
_P_JALR = int(_C.P_JALR)
_P_SET = int(_C.P_SET)
_P_MERGE = int(_C.P_MERGE)
_P_SYNCM = int(_C.P_SYNCM)

# hart scan orders by rotating-priority start index: _ORDER[start] is the
# deterministic probe sequence (start, start+1, ... mod 4)
_ORDER = ((0, 1, 2, 3), (1, 2, 3, 0), (2, 3, 0, 1), (3, 0, 1, 2))


class Core:
    """One core: pipeline stages, four harts, three banks."""

    __slots__ = (
        "index", "machine", "mem", "harts", "active",
        "links", "fork_queue", "_seq", "_tag",
        "_rr_fetch", "_rr_rename", "_rr_issue", "_rr_wb", "_rr_commit",
        "_rob_size",
    )

    #: hart factory — the SoA backend (machine/soa.py) overrides this so
    #: SoACore builds SoAHart instances through the shared __init__
    hart_cls = Hart

    def __init__(self, index, machine):
        self.index = index
        self.machine = machine
        params = machine.params
        self.mem = CoreMemory(index, params)
        hart_cls = self.hart_cls
        self.harts = [
            hart_cls(self, h, params.num_result_buffers,
                     machine.stats.harts[index][h])
            for h in range(params.harts_per_core)
        ]
        #: gating flag: False while no hart of this core can do pipeline
        #: work; maintained by Hart.start / the run loop (processor.py)
        self.active = False
        #: egress link cursors: every path this core *initiates* (requests,
        #: replies, forward/backward messages) reserves hops here, so link
        #: scheduling state is domain-local and shard-partitionable
        self.links = LinkScheduler(params.link_hop_latency)
        #: pending p_fn hart-allocation requests ((src core, parent gid)
        #: FIFO) granted as harts of this core free up
        self.fork_queue = []
        #: per-domain event sequence — with the core index it forms the
        #: partition-independent event key (see processor.post)
        self._seq = 0
        #: per-domain rename-tag counter (tags only need to be unique
        #: within a hart's lifetime, so a per-core counter suffices)
        self._tag = 0
        # rotating-priority pointers, one per stage
        self._rr_fetch = 0
        self._rr_rename = 0
        self._rr_issue = 0
        self._rr_wb = 0
        self._rr_commit = 0
        self._rob_size = params.rob_size

    # ---- gating ------------------------------------------------------------

    def activate(self):
        """Mark this core runnable (idempotent; called on hart wakeup)."""
        if not self.active:
            self.active = True
            self.machine._num_active += 1

    # ---- snapshot/restore --------------------------------------------------

    def state_dict(self):
        return {
            "active": self.active,
            "seq": self._seq,
            "tag": self._tag,
            "rr": [self._rr_fetch, self._rr_rename, self._rr_issue,
                   self._rr_wb, self._rr_commit],
            "links": self.links.state_dict(),
            "fork_queue": [list(entry) for entry in self.fork_queue],
            "mem": self.mem.state_dict(),
            "harts": [hart.state_dict() for hart in self.harts],
        }

    def load_state_dict(self, state):
        self.active = state["active"]
        self._seq = state["seq"]
        self._tag = state["tag"]
        (self._rr_fetch, self._rr_rename, self._rr_issue,
         self._rr_wb, self._rr_commit) = state["rr"]
        self.links.load_state_dict(state["links"])
        self.fork_queue = [tuple(entry) for entry in state["fork_queue"]]
        self.mem.load_state_dict(state["mem"])
        for hart, hart_state in zip(self.harts, state["harts"]):
            hart.load_state_dict(hart_state)

    # ---- hart selection ----------------------------------------------------

    def alloc_free_hart(self):
        """Lowest-numbered free hart, or None (deterministic)."""
        for hart in self.harts:
            if hart.is_free():
                return hart
        return None

    # ---- issue / execute ---------------------------------------------------

    def _rob_entry(self, hart, tag):
        for rob_entry in hart.rob:
            if rob_entry.tag == tag:
                return rob_entry
        raise AssertionError("tag %d not in ROB of hart %d" % (tag, hart.gid))

    def _finish_at(self, hart, entry, value, ready_at):
        """Route a register result through the writeback buffer."""
        if entry.low.writes:
            hart.rb.occupy(entry.tag, entry.low.rd, entry.rob)
            hart.rb.fill(value, ready_at)
        else:
            entry.rob.done = True

    def _resolve_pc(self, hart, target):
        hart.pc = target & 0xFFFFFFFF
        hart.awaiting_nextpc = False
        hart.fetch_ready_at = self.machine.cycle + 1

    def _execute(self, hart, entry):
        machine = self.machine
        now = machine.cycle
        low = entry.low
        cls = low.cls
        vals = entry.vals

        if cls == _ALU or cls == _MULDIV:
            # the single hottest path: compute and route the result
            # through the writeback buffer with _finish_at inlined
            a = vals[0]
            b = vals[1] if len(vals) == 2 else low.imm
            value = low.op(a, b)
            if low.writes:
                rb = hart.rb
                rb.busy = True
                rb.tag = entry.tag
                rb.reg = low.rd
                rb.value = value & 0xFFFFFFFF
                rb.ready_at = now + low.latency
                rb.rob = entry.rob
            else:
                entry.rob.done = True
        elif cls == _LUI:
            self._finish_at(hart, entry, (low.imm << 12) & 0xFFFFFFFF, now + 1)
        elif cls == _AUIPC:
            self._finish_at(hart, entry, (entry.pc + (low.imm << 12)) & 0xFFFFFFFF, now + 1)
        elif cls == _JAL:
            self._finish_at(hart, entry, entry.pc + 4, now + 1)
        elif cls == _JALR:
            self._resolve_pc(hart, (vals[0] + low.imm) & 0xFFFFFFFE)
            self._finish_at(hart, entry, entry.pc + 4, now + 1)
        elif cls == _BRANCH:
            taken = low.op(vals[0], vals[1])
            self._resolve_pc(hart, entry.pc + low.imm if taken else entry.pc + 4)
            entry.rob.done = True
        elif cls == _LOAD:
            addr = (vals[0] + low.imm) & 0xFFFFFFFF
            machine.schedule_load(self, hart, entry, low, addr)
            hart.stats.loads += 1
        elif cls == _STORE:
            addr = (vals[0] + low.imm) & 0xFFFFFFFF
            machine.schedule_store(self, hart, entry, low, addr, vals[1])
            hart.stats.stores += 1
        elif cls == _SYSTEM or cls == _FENCE:
            entry.rob.done = True
        elif cls == _P_SET:
            value = p_set_value(vals[0], self.index, hart.index)
            self._finish_at(hart, entry, value, now + 1)
        elif cls == _P_MERGE:
            self._finish_at(hart, entry, p_merge_value(vals[0], vals[1]), now + 1)
        elif cls == _P_FC:
            target = self.alloc_free_hart()
            target.reserve_for_fork(hart.gid)
            hart.succ = target.gid
            machine.wake_re_waiters(target)
            hart.stats.forks += 1
            machine.stats.per_core[self.index].forks += 1
            machine.trace.record(now, self.index, hart.index, "fork",
                                 "allocate hart %d" % target.gid)
            if machine.sanitizer is not None:
                machine.sanitizer.record(
                    self.index,
                    (now, "fork", hart.gid, entry.tag, target.gid))
            self._finish_at(hart, entry, target.gid, now + 1)
        elif cls == _P_FN:
            # the hart was granted by the next core (fork token protocol,
            # requested at decode); consume the oldest token
            target_gid = hart.fork_tokens.pop(0)
            hart.succ = target_gid
            hart.stats.forks += 1
            machine.stats.per_core[self.index].forks += 1
            machine.trace.record(now, self.index, hart.index, "fork",
                                 "allocate hart %d" % target_gid)
            if machine.sanitizer is not None:
                machine.sanitizer.record(
                    self.index,
                    (now, "fork", hart.gid, entry.tag, target_gid))
            self._finish_at(hart, entry, target_gid, now + 1)
        elif cls == _P_SWCV:
            machine.schedule_cv_write(
                self, hart, entry, vals[0] & 0xFFFF, low.imm, vals[1])
        elif cls == _P_LWCV:
            if machine.sanitizer is not None:
                machine.sanitizer.record(
                    self.index, (now, "lwcv", hart.gid, entry.tag, low.imm))
            addr = machine.cv_address(hart, low.imm)
            machine.schedule_load(self, hart, entry, low, addr)
        elif cls == _P_SWRE:
            machine.schedule_re_send(
                self, hart, entry, vals[0] & 0xFFFF, low.imm, vals[1])
        elif cls == _P_LWRE:
            slot = low.re_slot
            value = hart.re_buffers[slot]
            hart.re_buffers[slot] = None
            if machine.sanitizer is not None:
                machine.sanitizer.record(
                    self.index, (now, "lwre", hart.gid, entry.tag, slot))
            machine.wake_re_waiters(hart, slot)
            self._finish_at(hart, entry, value, now + 1)
        elif cls == _P_JAL:
            # next pc already resolved at decode; send pc+4, clear rd
            if machine.sanitizer is not None:
                machine.sanitizer.record(
                    self.index,
                    (now, "jsend", hart.gid, entry.tag, vals[0] & 0xFFFF))
            machine.send_start_pc(self, hart, vals[0] & 0xFFFF, entry.pc + 4)
            self._finish_at(hart, entry, 0, now + 1)
        elif cls == _P_JALR:
            if low.rd == 0:
                self._execute_p_ret(hart, entry)
            else:
                if machine.sanitizer is not None:
                    machine.sanitizer.record(
                        self.index,
                        (now, "jsend", hart.gid, entry.tag, vals[0] & 0xFFFF))
                machine.send_start_pc(self, hart, vals[0] & 0xFFFF, entry.pc + 4)
                self._resolve_pc(hart, vals[1] & 0xFFFFFFFE)
                self._finish_at(hart, entry, 0, now + 1)
        elif cls == _P_SYNCM:
            hart.syncm_block = False
            entry.rob.done = True
        else:
            raise AssertionError("unhandled instruction class %r" % (cls,))

    def _execute_p_ret(self, hart, entry):
        """p_ret = p_jalr zero, ra, t0: decide the ending case (paper §4)."""
        ra, t0 = entry.vals
        if ra == 0:
            if t0 == 0xFFFFFFFF:
                action = ("exit", None, None)
            elif join_hart(t0) == hart.gid:
                action = ("wait", None, None)
            else:
                action = ("end", None, None)
        else:
            action = ("join", join_hart(t0), ra)
        rob_entry = entry.rob
        rob_entry.ret_action = action
        rob_entry.done = True
        # no further fetch on this hart until a join or a new fork
        hart.pc = None
        hart.awaiting_nextpc = False

    def _commit_p_ret(self, hart, head):
        machine = self.machine
        now = machine.cycle
        kind, join_gid, join_addr = head.ret_action
        machine.trace.record(now, self.index, hart.index, "p_ret", kind)
        sanitizer = machine.sanitizer
        if sanitizer is not None:
            # receive the predecessor's signal *before* sending ours so
            # the ordered-release chain accumulates transitively
            if hart.pred is not None:
                sanitizer.record(
                    self.index, (now, "pred", hart.gid, head.tag))
            if hart.succ is not None:
                sanitizer.record(
                    self.index, (now, "esig", hart.gid, head.tag, hart.succ))
        # consume the predecessor link, propagate the ending signal
        hart.pred = None
        hart.pred_done = False
        if hart.succ is not None:
            machine.send_ending_signal(self, hart, hart.succ)
            hart.succ = None
        if kind == "exit":
            machine.halt("exit")
        elif kind == "wait":
            hart.pc = None
            hart.waiting_join = True
            if hart.pending_join is not None:
                addr = hart.pending_join
                hart.pending_join = None
                if sanitizer is not None:
                    sanitizer.record(
                        self.index, (now, "jrecv", hart.gid, head.tag))
                hart.start(addr, now)
        elif kind == "end":
            hart.end()
        elif kind == "join":
            hart.end()
            machine.stats.per_core[self.index].joins += 1
            if join_gid == hart.gid:
                # single-member team: the last member is the join hart —
                # resume directly at the join address
                hart.start(join_addr, now)
            else:
                if sanitizer is not None:
                    sanitizer.record(
                        self.index,
                        (now, "jretsend", hart.gid, head.tag, join_gid))
                machine.send_join(self, hart, join_gid, join_addr)
        else:
            raise AssertionError(kind)
        # a hart may just have become free: grant the oldest queued p_fn
        # request (after the restart cases above, so a self-resuming hart
        # is never stolen)
        if self.fork_queue:
            child = self.alloc_free_hart()
            if child is not None:
                src_core_index, parent_gid = self.fork_queue.pop(0)
                machine.grant_fork(self, child, src_core_index, parent_gid)

    # ---- per-cycle ---------------------------------------------------------

    def tick(self):
        """Run the five stages for one cycle (commit-side first).

        All five stages are inlined here — this method runs once per
        active core per simulated cycle and used to spend most of its
        time on Python call overhead.  Each stage block selects at most
        one hart by deterministic rotating priority, exactly as the
        former ``stage_*`` methods did.

        Returns True when any hart had pipeline work; False means the
        core is quiescent and the run loop may gate it off until a
        wakeup (``Hart.start``) re-activates it.
        """
        harts = self.harts
        busy = False
        for hart in harts:
            if hart.pc is not None or hart.rob or hart.fetch_buf is not None:
                busy = True
                break
        machine = self.machine
        metrics = machine.metrics
        if not busy:
            if metrics is not None:
                # the run loop gates this core off from the next cycle on;
                # this cycle's stage slot is the first gated-idle charge
                metrics.idle(self.index, machine.cycle, 1)
            return False
        cycle = machine.cycle
        if metrics is not None and cycle >= metrics.edges[self.index]:
            # close finished sampling windows before this cycle's charges
            metrics.roll(self.index, cycle)
        committed = False

        # ---- commit ----
        for h in _ORDER[self._rr_commit]:
            hart = harts[h]
            rob = hart.rob
            if not rob:
                continue
            head = rob[0]
            if not head.done:
                continue
            if head.ret_action is not None:
                # the ordered-release barrier: wait for the predecessor's
                # ending-hart signal (if this hart was forked and the
                # link is still pending), and for our own memory writes
                # to be visible
                if hart.pred is not None and not hart.pred_done:
                    continue
                if hart.outstanding_mem != 0:
                    continue
            self._rr_commit = (h + 1) & 3
            rob.pop(0)
            hart.stats.retired += 1
            committed = True
            low = head.low
            if low.is_ebreak:
                machine.halt("ebreak")
            elif low.is_ecall:
                machine.error("ecall is not supported on bare-metal LBP")
            elif head.ret_action is not None:
                self._commit_p_ret(hart, head)
            break

        # ---- writeback ----
        for h in _ORDER[self._rr_wb]:
            hart = harts[h]
            rb = hart.rb
            if rb.busy and rb.value is not None and rb.ready_at <= cycle:
                self._rr_wb = (h + 1) & 3
                # Hart.writeback inlined: latest-rename register update
                # plus the broadcast to waiting instruction-table entries
                tag = rb.tag
                value = rb.value
                reg = rb.reg
                rename = hart.rename
                if reg != 0 and rename[reg] == tag:
                    hart.regs[reg] = value
                    rename[reg] = None
                for waiter in hart.it:
                    waits = waiter.waits
                    if tag in waits:
                        for slot, wait in enumerate(waits):
                            if wait == tag:
                                waits[slot] = None
                                waiter.vals[slot] = value
                                waiter.nwaits -= 1
                rb.rob.done = True
                rb.busy = False
                rb.tag = None
                rb.value = None
                rb.rob = None
                break

        # ---- issue (oldest ready entry of the first eligible hart) ----
        for h in _ORDER[self._rr_issue]:
            hart = harts[h]
            it = hart.it
            if not it:
                continue
            entry = None
            older_store_pending = False
            rb_busy = hart.rb.busy
            for candidate in it:
                ready = candidate.nwaits == 0
                if ready:
                    low = candidate.low
                    cls = low.cls
                    if low.writes and rb_busy:
                        ready = False
                    elif cls == _LOAD or cls == _P_LWCV:
                        # LBP has no load/store queue; the minimal
                        # disambiguation we model is: a load waits for
                        # all older stores of its hart to have issued
                        # (port FIFO then orders same-bank accesses)
                        ready = not older_store_pending
                    elif cls == _P_LWRE:
                        ready = hart.re_buffers[low.re_slot] is not None
                    elif cls == _P_FC:
                        ready = self.alloc_free_hart() is not None
                    elif cls == _P_FN:
                        # issue only once the next core granted a hart
                        # (request posted at decode; last-core errors are
                        # raised there)
                        ready = bool(hart.fork_tokens)
                    elif cls == _P_SYNCM:
                        ready = candidate is it[0] and hart.outstanding_mem == 0
                if ready:
                    entry = candidate
                    break
                cls = candidate.low.cls
                if cls == _STORE or cls == _P_SWCV:
                    older_store_pending = True
            if entry is None:
                continue
            self._rr_issue = (h + 1) & 3
            it.remove(entry)
            entry.issued = True
            low = entry.low
            cls = low.cls
            if cls == _ALU or cls == _MULDIV:
                # the hottest execute path, inlined (mirrors _execute)
                vals = entry.vals
                a = vals[0]
                b = vals[1] if len(vals) == 2 else low.imm
                value = low.op(a, b)
                if low.writes:
                    rb = hart.rb
                    rb.busy = True
                    rb.tag = entry.tag
                    rb.reg = low.rd
                    rb.value = value & 0xFFFFFFFF
                    rb.ready_at = cycle + low.latency
                    rb.rob = entry.rob
                else:
                    entry.rob.done = True
            else:
                self._execute(hart, entry)
            break

        # ---- decode / rename ----
        rob_size = self._rob_size
        for h in _ORDER[self._rr_rename]:
            hart = harts[h]
            fetch_buf = hart.fetch_buf
            if fetch_buf is None or len(hart.rob) >= rob_size:
                continue
            self._rr_rename = (h + 1) & 3
            pc, low = fetch_buf
            hart.fetch_buf = None
            tag = self._tag + 1
            self._tag = tag

            vals, waits = [], []
            regs = hart.regs
            rename = hart.rename
            for reg in low.reads:
                if reg == 0:
                    vals.append(0)
                    waits.append(None)
                else:
                    producer = rename[reg]
                    if producer is None:
                        vals.append(regs[reg])
                        waits.append(None)
                    else:
                        vals.append(None)
                        waits.append(producer)

            rob_entry = ROBEntry(tag, low, pc)
            hart.it.append(ITEntry(tag, low, pc, vals, waits, rob_entry))
            hart.rob.append(rob_entry)
            if low.writes:
                rename[low.rd] = tag
            if low.cls == _P_FN:
                machine.send_fork_req(self, hart)

            # next-pc determination (fetch resumes when it is known)
            cls = low.cls
            if cls == _BRANCH or cls == _JALR or cls == _P_JALR:
                pass  # resolved at issue; hart stays suspended
            elif cls == _JAL or cls == _P_JAL:
                hart.pc = (pc + low.imm) & 0xFFFFFFFF
                hart.awaiting_nextpc = False
                hart.fetch_ready_at = cycle + 1
            elif cls == _SYSTEM:
                hart.pc = None  # halts (ebreak) or traps (ecall) at commit
                hart.awaiting_nextpc = False
            else:
                hart.pc = pc + 4
                hart.awaiting_nextpc = False
                hart.fetch_ready_at = cycle + 1
                if cls == _P_SYNCM:
                    hart.syncm_block = True
            break

        # ---- fetch ----
        for h in _ORDER[self._rr_fetch]:
            hart = harts[h]
            pc = hart.pc
            if (
                pc is not None
                and not hart.awaiting_nextpc
                and not hart.syncm_block
                and hart.fetch_buf is None
                and not hart.reserved
                and cycle >= hart.fetch_ready_at
            ):
                self._rr_fetch = (h + 1) & 3
                low = machine.lowered.get(pc)
                if low is None:  # non-code address: the slow error path
                    low = machine.fetch_instruction(pc, hart)
                hart.fetch_buf = (pc, low)
                hart.awaiting_nextpc = True  # suspended until next pc known
                break
        if metrics is not None and not committed:
            metrics.stall(self, cycle)
        return True

    def any_activity_possible(self):
        """Cheap liveness check for deadlock detection.

        Harts that are merely waiting (for a join, or reserved awaiting a
        start pc) are passive: they only progress through events, so they
        do not count as activity by themselves.
        """
        return any(not hart.is_idle() for hart in self.harts)
