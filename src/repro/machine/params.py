"""Microarchitectural parameters of the simulated LBP machine.

The paper fixes the structure (4 harts/core, 5 stages, 3 banks/core,
r1/r2/r3 tree) but publishes no numeric latencies; the defaults below are
our calibration (DESIGN.md section 5) and the ablation benchmark A2 sweeps
the interconnect ones.
"""

from repro import memmap


class Params:
    """All knobs of one simulated machine instance."""

    def __init__(
        self,
        num_cores=4,
        harts_per_core=memmap.HARTS_PER_CORE,
        rob_size=8,
        num_result_buffers=4,
        alu_latency=1,
        mul_latency=3,
        div_latency=12,
        local_mem_latency=2,
        link_hop_latency=1,
        bank_access_latency=1,
        cv_write_latency=2,
        trace_enabled=False,
        max_cycles=200_000_000,
    ):
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if harts_per_core != memmap.HARTS_PER_CORE:
            raise ValueError(
                "the LBP memory map fixes %d harts per core"
                % memmap.HARTS_PER_CORE
            )
        self.num_cores = num_cores
        self.harts_per_core = harts_per_core
        #: reorder-buffer entries per hart (bounds in-flight instructions)
        self.rob_size = rob_size
        #: numbered p_swre/p_lwre result buffers per hart
        self.num_result_buffers = num_result_buffers
        self.alu_latency = alu_latency
        self.mul_latency = mul_latency
        self.div_latency = div_latency
        #: issue → bank access for the local port
        self.local_mem_latency = local_mem_latency
        #: per link traversal in the router tree / intercore lines
        self.link_hop_latency = link_hop_latency
        #: cycles a bank needs to serve one access
        self.bank_access_latency = bank_access_latency
        #: p_swcv delivery into the allocated hart's CV area
        self.cv_write_latency = cv_write_latency
        self.trace_enabled = trace_enabled
        self.max_cycles = max_cycles

    @property
    def num_harts(self):
        return self.num_cores * self.harts_per_core

    def latency_for(self, spec):
        """Execution latency for an instruction spec."""
        mnemonic = spec.mnemonic
        if mnemonic in ("mul", "mulh", "mulhsu", "mulhu"):
            return self.mul_latency
        if mnemonic in ("div", "divu", "rem", "remu"):
            return self.div_latency
        return self.alu_latency

    def state_dict(self):
        """All knob values as a plain dict (snapshot / cache-key input)."""
        return dict(
            num_cores=self.num_cores,
            harts_per_core=self.harts_per_core,
            rob_size=self.rob_size,
            num_result_buffers=self.num_result_buffers,
            alu_latency=self.alu_latency,
            mul_latency=self.mul_latency,
            div_latency=self.div_latency,
            local_mem_latency=self.local_mem_latency,
            link_hop_latency=self.link_hop_latency,
            bank_access_latency=self.bank_access_latency,
            cv_write_latency=self.cv_write_latency,
            trace_enabled=self.trace_enabled,
            max_cycles=self.max_cycles,
        )

    @classmethod
    def from_state_dict(cls, state):
        return cls(**state)

    def copy(self, **overrides):
        """A copy of these params with some values replaced."""
        fields = self.state_dict()
        fields.update(overrides)
        return Params(**fields)
