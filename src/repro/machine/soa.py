"""Struct-of-arrays execution backend: the same machine, restructured.

``LBP(backend="soa")`` swaps :class:`~repro.machine.core.Core` for
:class:`SoACore` — a drop-in core whose per-cycle loop is restructured
for speed while staying **bit-exact** with the interpreter backend (the
golden trace digests, snapshot bytes and differential fuzzer all pin
this; see ``tests/integration/test_backend_parity.py``).

What changes (and why it cannot change behaviour):

* **Merged instruction-window entries.** The interpreter allocates an
  ``ITEntry`` + ``ROBEntry`` pair plus two operand lists per
  instruction.  Here one :class:`SoAEntry` plays both roles
  (``entry.rob`` is the entry itself) and the operand lists are
  scalarised into ``val0/val1/wait0/wait1`` slots — RV32 instructions
  read at most two sources.  Everything that walks the window —
  the event handlers' ``_rob_by_tag``, the metrics classifier's
  ``candidate.rob is head``, the writeback buffer's ``rb.rob`` — sees
  the same object graph it saw before.

* **Struct-of-arrays stage gating.**  The per-stage eligibility
  predicates are hoisted out of the stage scans into flat per-hart /
  per-core scoreboard fields maintained at the state-transition sites:
  ``fetch_ok`` (the five-term fetch predicate collapsed to one flag),
  ``n_ready`` (count of operand-ready waiting instructions, gating the
  issue scan) and ``_wb_wake`` (earliest ready_at over the writeback
  buffers, gating the writeback scan).  A stage whose gate is closed
  is skipped without touching any hart.

* **Table-dispatched semantics.**  Decode and issue switch on the
  precomputed ``LoweredInstr.dec_kind`` / ``issue_kind`` ints, and the
  execute tail dispatches through :data:`EXEC_TABLE` (class → handler)
  instead of a long if-chain; the four hot classes (ALU/MULDIV, load,
  store, branch) stay inline.

* **Opcode-grouped ALU passes.**  Register-writing ALU/MULDIV results
  only become observable at the *next* cycle's writeback stage (the
  result sits in the issuing hart's private writeback buffer, which no
  same-cycle stage or event reads), so their execution can be deferred
  to the end of the cycle and executed grouped by opcode across all
  cores — one vectorized numpy pass per group when the batch is large
  enough to amortise array overhead, a plain loop otherwise.  The
  numpy lanes are bit-exact twins of ``ALU_OPS`` (same wrap, shift and
  compare semantics), property-tested against the scalar ops.

numpy is optional: without it the backend still runs (the grouped pass
falls back to the scalar loop) — and ``repro.machine.processor``
additionally falls back to ``backend="interp"`` with a warning when
numpy is missing, so a bare-python install keeps the seed behaviour.
"""

from repro.isa.semantics import MASK32, join_hart, p_merge_value, p_set_value
from repro.machine.core import Core, _ORDER
from repro.machine.hart import Hart, ResultBuffer
from repro.isa.spec import InstrClass

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via NUMPY fallback test
    _np = None

HAVE_NUMPY = _np is not None

_C = InstrClass
_ALU = int(_C.ALU)
_MULDIV = int(_C.MULDIV)
_LOAD = int(_C.LOAD)
_STORE = int(_C.STORE)
_BRANCH = int(_C.BRANCH)
_JALR = int(_C.JALR)
_LUI = int(_C.LUI)
_AUIPC = int(_C.AUIPC)
_JAL = int(_C.JAL)
_SYSTEM = int(_C.SYSTEM)
_FENCE = int(_C.FENCE)
_P_FC = int(_C.P_FC)
_P_FN = int(_C.P_FN)
_P_SWCV = int(_C.P_SWCV)
_P_LWCV = int(_C.P_LWCV)
_P_SWRE = int(_C.P_SWRE)
_P_LWRE = int(_C.P_LWRE)
_P_JAL = int(_C.P_JAL)
_P_JALR = int(_C.P_JALR)
_P_SET = int(_C.P_SET)
_P_MERGE = int(_C.P_MERGE)
_P_SYNCM = int(_C.P_SYNCM)

_INF = float("inf")

#: machines with at least this many cores defer register-writing
#: ALU/MULDIV execution into the end-of-cycle opcode-grouped pass
#: (below it the per-op bookkeeping outweighs the batching win);
#: tests pin it to 1 to force the deferred path through the digests
DEFER_ALU_MIN_CORES = 8

#: minimum opcode-group size for the numpy lane; smaller groups run
#: the scalar loop (array setup dominates under ~tens of lanes)
NUMPY_MIN_BATCH = 16


class SoAEntry(object):
    """One in-flight instruction: IT entry and ROB slot merged.

    The interpreter's split ``ITEntry``/``ROBEntry`` pair is collapsed
    into a single object; ``rob`` resolves to the entry itself so every
    cross-reference in the shared machinery (``entry.rob.done``,
    ``rb.rob``, ``candidate.rob is head``) keeps working.  ``vals`` /
    ``waits`` reconstruct the interpreter's operand lists so the base
    ``Hart.state_dict`` serialises identical snapshot bytes.
    """

    __slots__ = ("tag", "low", "pc", "val0", "val1", "wait0", "wait1",
                 "nwaits", "issued", "done", "ret_action")

    def __init__(self, tag, low, pc, val0, val1, wait0, wait1, nwaits):
        self.tag = tag
        self.low = low
        self.pc = pc
        self.val0 = val0
        self.val1 = val1
        self.wait0 = wait0
        self.wait1 = wait1
        self.nwaits = nwaits
        self.issued = False
        self.done = False
        self.ret_action = None

    @property
    def rob(self):
        return self

    @property
    def vals(self):
        nreads = self.low.nreads
        if nreads == 0:
            return []
        if nreads == 1:
            return [self.val0]
        return [self.val0, self.val1]

    @property
    def waits(self):
        nreads = self.low.nreads
        if nreads == 0:
            return []
        if nreads == 1:
            return [self.wait0]
        return [self.wait0, self.wait1]

    def sources_ready(self):
        return self.nwaits == 0


class SoAResultBuffer(ResultBuffer):
    """Writeback buffer that maintains the owning core's wb gate."""

    __slots__ = ("hart",)

    def __init__(self, hart):
        ResultBuffer.__init__(self)
        self.hart = hart

    def fill(self, value, ready_at):
        self.value = value & MASK32
        self.ready_at = ready_at
        core = self.hart.core
        if ready_at < core._wb_wake:
            core._wb_wake = ready_at


class SoAHart(Hart):
    """Hart with the hoisted scoreboard flags.

    ``fetch_ok`` is the fetch stage's five-term predicate collapsed to
    one bool, re-derived at every site that mutates a term; ``n_ready``
    counts waiting instructions with all operands present and gates the
    issue scan.  Both are derived state — snapshots neither carry nor
    need them (``load_state_dict`` recomputes).
    """

    __slots__ = ("fetch_ok", "n_ready")

    def __init__(self, core, index, num_result_buffers, stats):
        Hart.__init__(self, core, index, num_result_buffers, stats)
        self.rb = SoAResultBuffer(self)
        self.fetch_ok = False
        self.n_ready = 0

    def _refresh_fetch_ok(self):
        self.fetch_ok = (
            self.pc is not None
            and not self.awaiting_nextpc
            and not self.syncm_block
            and self.fetch_buf is None
            and not self.reserved
        )

    def start(self, pc, cycle):
        Hart.start(self, pc, cycle)
        self.fetch_ok = self.fetch_buf is None

    def end(self):
        Hart.end(self)
        self.fetch_ok = False

    def reserve_for_fork(self, parent_gid):
        Hart.reserve_for_fork(self, parent_gid)
        self.fetch_ok = False

    def load_state_dict(self, state):
        machine = self.core.machine
        lowered = machine.lowered_at
        self.regs = list(state["regs"])
        self.rename = list(state["rename"])
        self.pc = state["pc"]
        self.awaiting_nextpc = state["awaiting_nextpc"]
        self.fetch_ready_at = state["fetch_ready_at"]
        self.syncm_block = state["syncm_block"]
        fetch_pc = state["fetch_buf"]
        self.fetch_buf = None if fetch_pc is None else (
            fetch_pc, lowered(fetch_pc))
        # rebuild merged entries: the snapshot's "rob" list carries every
        # in-flight instruction, its "it" list the unissued subset (both
        # in program order); join them by tag
        it_by_tag = {e["tag"]: e for e in state["it"]}
        self.rob = rob = []
        self.it = it = []
        entry_by_tag = {}
        for entry_state in state["rob"]:
            tag = entry_state["tag"]
            pc = entry_state["pc"]
            it_state = it_by_tag.get(tag)
            if it_state is not None:
                vals = it_state["vals"]
                waits = it_state["waits"]
                val0 = vals[0] if vals else None
                val1 = vals[1] if len(vals) == 2 else None
                wait0 = waits[0] if waits else None
                wait1 = waits[1] if len(waits) == 2 else None
                nwaits = sum(1 for wait in waits if wait is not None)
                entry = SoAEntry(tag, lowered(pc), pc,
                                 val0, val1, wait0, wait1, nwaits)
                entry.issued = it_state["issued"]
                it.append(entry)
            else:
                entry = SoAEntry(tag, lowered(pc), pc,
                                 None, None, None, None, 0)
                entry.issued = True
            entry.done = entry_state["done"]
            if entry_state["ret_action"] is not None:
                entry.ret_action = tuple(entry_state["ret_action"])
            rob.append(entry)
            entry_by_tag[tag] = entry
        rb_state = state["rb"]
        rb = self.rb
        rb.busy = rb_state["busy"]
        rb.tag = rb_state["tag"]
        rb.reg = rb_state["reg"]
        rb.value = rb_state["value"]
        rb.ready_at = rb_state["ready_at"]
        rb.rob = entry_by_tag[rb.tag] if rb.busy else None
        self.re_buffers = list(state["re_buffers"])
        self.re_waiters = [
            [tuple(desc) for desc in waiters]
            for waiters in state["re_waiters"]
        ]
        self.outstanding_mem = state["outstanding_mem"]
        self.reserved = state["reserved"]
        self.waiting_join = state["waiting_join"]
        self.pending_join = state["pending_join"]
        self.pred = state["pred"]
        self.pred_done = state["pred_done"]
        self.succ = state["succ"]
        self.fork_tokens = list(state["fork_tokens"])
        self.n_ready = sum(1 for e in it if e.nwaits == 0)
        self._refresh_fetch_ok()


# ---- execute tail: table-dispatched cold instruction classes ----------------
# Hot classes (ALU/MULDIV, load, store, branch) stay inline in
# SoACore._execute; everything else dispatches through EXEC_TABLE.


def _exec_lui(core, hart, entry, low):
    core._finish_at(hart, entry, (low.imm << 12) & MASK32,
                    core.machine.cycle + 1)


def _exec_auipc(core, hart, entry, low):
    core._finish_at(hart, entry, (entry.pc + (low.imm << 12)) & MASK32,
                    core.machine.cycle + 1)


def _exec_jal(core, hart, entry, low):
    core._finish_at(hart, entry, entry.pc + 4, core.machine.cycle + 1)


def _exec_jalr(core, hart, entry, low):
    core._resolve_pc(hart, (entry.val0 + low.imm) & 0xFFFFFFFE)
    core._finish_at(hart, entry, entry.pc + 4, core.machine.cycle + 1)


def _exec_nop(core, hart, entry, low):
    entry.done = True


def _exec_p_set(core, hart, entry, low):
    value = p_set_value(entry.val0, core.index, hart.index)
    core._finish_at(hart, entry, value, core.machine.cycle + 1)


def _exec_p_merge(core, hart, entry, low):
    core._finish_at(hart, entry, p_merge_value(entry.val0, entry.val1),
                    core.machine.cycle + 1)


def _exec_p_fc(core, hart, entry, low):
    machine = core.machine
    now = machine.cycle
    target = core.alloc_free_hart()
    target.reserve_for_fork(hart.gid)
    hart.succ = target.gid
    machine.wake_re_waiters(target)
    hart.stats.forks += 1
    machine.stats.per_core[core.index].forks += 1
    machine.trace.record(now, core.index, hart.index, "fork",
                         "allocate hart %d" % target.gid)
    if machine.sanitizer is not None:
        machine.sanitizer.record(
            core.index, (now, "fork", hart.gid, entry.tag, target.gid))
    core._finish_at(hart, entry, target.gid, now + 1)


def _exec_p_fn(core, hart, entry, low):
    machine = core.machine
    now = machine.cycle
    target_gid = hart.fork_tokens.pop(0)
    hart.succ = target_gid
    hart.stats.forks += 1
    machine.stats.per_core[core.index].forks += 1
    machine.trace.record(now, core.index, hart.index, "fork",
                         "allocate hart %d" % target_gid)
    if machine.sanitizer is not None:
        machine.sanitizer.record(
            core.index, (now, "fork", hart.gid, entry.tag, target_gid))
    core._finish_at(hart, entry, target_gid, now + 1)


def _exec_p_swcv(core, hart, entry, low):
    core.machine.schedule_cv_write(
        core, hart, entry, entry.val0 & 0xFFFF, low.imm, entry.val1)


def _exec_p_lwcv(core, hart, entry, low):
    machine = core.machine
    if machine.sanitizer is not None:
        machine.sanitizer.record(
            core.index,
            (machine.cycle, "lwcv", hart.gid, entry.tag, low.imm))
    addr = machine.cv_address(hart, low.imm)
    machine.schedule_load(core, hart, entry, low, addr)


def _exec_p_swre(core, hart, entry, low):
    core.machine.schedule_re_send(
        core, hart, entry, entry.val0 & 0xFFFF, low.imm, entry.val1)


def _exec_p_lwre(core, hart, entry, low):
    machine = core.machine
    now = machine.cycle
    slot = low.re_slot
    value = hart.re_buffers[slot]
    hart.re_buffers[slot] = None
    if machine.sanitizer is not None:
        machine.sanitizer.record(
            core.index, (now, "lwre", hart.gid, entry.tag, slot))
    machine.wake_re_waiters(hart, slot)
    core._finish_at(hart, entry, value, now + 1)


def _exec_p_jal(core, hart, entry, low):
    machine = core.machine
    now = machine.cycle
    if machine.sanitizer is not None:
        machine.sanitizer.record(
            core.index,
            (now, "jsend", hart.gid, entry.tag, entry.val0 & 0xFFFF))
    machine.send_start_pc(core, hart, entry.val0 & 0xFFFF, entry.pc + 4)
    core._finish_at(hart, entry, 0, now + 1)


def _exec_p_jalr(core, hart, entry, low):
    machine = core.machine
    now = machine.cycle
    if low.rd == 0:
        core._execute_p_ret(hart, entry)
    else:
        if machine.sanitizer is not None:
            machine.sanitizer.record(
                core.index,
                (now, "jsend", hart.gid, entry.tag, entry.val0 & 0xFFFF))
        machine.send_start_pc(core, hart, entry.val0 & 0xFFFF, entry.pc + 4)
        core._resolve_pc(hart, entry.val1 & 0xFFFFFFFE)
        core._finish_at(hart, entry, 0, now + 1)


def _exec_p_syncm(core, hart, entry, low):
    hart.syncm_block = False
    hart._refresh_fetch_ok()
    entry.done = True


#: instruction class -> execute handler, for every class the inline hot
#: chain does not cover (``SoACore._execute``)
EXEC_TABLE = {
    _LUI: _exec_lui,
    _AUIPC: _exec_auipc,
    _JAL: _exec_jal,
    _JALR: _exec_jalr,
    _SYSTEM: _exec_nop,
    _FENCE: _exec_nop,
    _P_SET: _exec_p_set,
    _P_MERGE: _exec_p_merge,
    _P_FC: _exec_p_fc,
    _P_FN: _exec_p_fn,
    _P_SWCV: _exec_p_swcv,
    _P_LWCV: _exec_p_lwcv,
    _P_SWRE: _exec_p_swre,
    _P_LWRE: _exec_p_lwre,
    _P_JAL: _exec_p_jal,
    _P_JALR: _exec_p_jalr,
    _P_SYNCM: _exec_p_syncm,
}


# ---- opcode-grouped deferred ALU pass ---------------------------------------
# A register-writing ALU/MULDIV result is invisible until the *next*
# cycle: it lands in the issuing hart's private writeback buffer, whose
# earliest ready_at is cycle + latency >= cycle + 1, and no same-cycle
# stage, event handler or observer reads the buffer's value/ready_at
# before the next cycle's writeback scan.  (Same-core stages that do
# read rb.busy — issue and p_fc's is_free — all ran before this core's
# issue slot selected the op; other cores only ever touch their own
# harts' buffers.)  Deferring the execution to the end of the cycle and
# batching it across cores is therefore unobservable — traces, stats
# and snapshots stay bit-identical — which is what makes the grouped
# numpy pass safe.


def _np_signed(arr):
    """Reinterpret masked uint64 lanes as signed 32-bit values."""
    return ((arr ^ 0x80000000).astype(_np.int64) - 0x80000000)


def _make_numpy_ops():
    if _np is None:
        return {}

    def add(a, b):
        return (a + b) & MASK32

    def sub(a, b):
        return (a - b) & MASK32

    def sll(a, b):
        return (a << (b & 31)) & MASK32

    def srl(a, b):
        return a >> (b & 31)

    def sra(a, b):
        return (_np_signed(a) >> (b & 31).astype(_np.int64)) & MASK32

    def slt(a, b):
        return (_np_signed(a) < _np_signed(b)).astype(_np.uint64)

    def sltu(a, b):
        return (a < b).astype(_np.uint64)

    def xor(a, b):
        return a ^ b

    def or_(a, b):
        return a | b

    def and_(a, b):
        return a & b

    def mul(a, b):
        return (a * b) & MASK32  # uint64 wraparound keeps the low bits

    return {
        "add": add, "addi": add, "sub": sub,
        "sll": sll, "slli": sll, "srl": srl, "srli": srl,
        "sra": sra, "srai": sra,
        "slt": slt, "slti": slt, "sltu": sltu, "sltiu": sltu,
        "xor": xor, "xori": xor, "or": or_, "ori": or_,
        "and": and_, "andi": and_, "mul": mul,
    }


#: mnemonic -> vectorized twin of ALU_OPS[mnemonic], operating on
#: masked uint64 lanes (div/rem/mulh stay scalar: rare + edge-case-y)
NUMPY_ALU_OPS = _make_numpy_ops()


def flush_alu(machine):
    """Execute the cycle's deferred ALU/MULDIV issues, grouped by opcode.

    Called by the run loops after every core ticked; each pending item
    is ``(hart, entry, low, a, b)`` appended by ``SoACore``'s issue
    stage.  Groups meeting :data:`NUMPY_MIN_BATCH` run as one numpy
    pass; the rest (and every group when numpy is absent) run the
    scalar ``low.op`` loop — same results either way.
    """
    pending = machine._alu_pending
    cycle = machine.cycle
    if _np is not None and len(pending) >= NUMPY_MIN_BATCH:
        groups = {}
        for item in pending:
            groups.setdefault(item[2].mnemonic, []).append(item)
        for mnemonic, group in groups.items():
            np_op = NUMPY_ALU_OPS.get(mnemonic)
            if np_op is not None and len(group) >= NUMPY_MIN_BATCH:
                a = _np.fromiter(
                    (item[3] & MASK32 for item in group),
                    dtype=_np.uint64, count=len(group))
                b = _np.fromiter(
                    (item[4] & MASK32 for item in group),
                    dtype=_np.uint64, count=len(group))
                values = np_op(a, b)
                for i, (hart, entry, low, _, _b) in enumerate(group):
                    _fill_rb(hart, entry, low, int(values[i]), cycle)
            else:
                for hart, entry, low, a, b in group:
                    _fill_rb(hart, entry, low, low.op(a, b), cycle)
    else:
        for hart, entry, low, a, b in pending:
            _fill_rb(hart, entry, low, low.op(a, b), cycle)
    del pending[:]


def _fill_rb(hart, entry, low, value, cycle):
    rb = hart.rb
    rb.busy = True
    rb.tag = entry.tag
    rb.reg = low.rd
    rb.value = value & MASK32
    ready_at = cycle + low.latency
    rb.ready_at = ready_at
    rb.rob = entry
    core = hart.core
    if ready_at < core._wb_wake:
        core._wb_wake = ready_at


class SoACore(Core):
    """Drop-in :class:`Core` with the restructured per-cycle loop."""

    __slots__ = ("_wb_wake", "_defer_alu")

    hart_cls = SoAHart

    def __init__(self, index, machine):
        Core.__init__(self, index, machine)
        #: earliest ready_at over this core's filled writeback buffers
        #: (inf when none) — the writeback stage's skip gate
        self._wb_wake = _INF
        self._defer_alu = machine.params.num_cores >= DEFER_ALU_MIN_CORES

    # ---- snapshot/restore ---------------------------------------------------

    def load_state_dict(self, state):
        Core.load_state_dict(self, state)
        self._recompute_wb_wake()

    def _recompute_wb_wake(self):
        wake = _INF
        for hart in self.harts:
            rb = hart.rb
            if rb.busy and rb.value is not None and rb.ready_at < wake:
                wake = rb.ready_at
        self._wb_wake = wake

    # ---- issue / execute ----------------------------------------------------

    def _resolve_pc(self, hart, target):
        hart.pc = target & MASK32
        hart.awaiting_nextpc = False
        hart.fetch_ready_at = self.machine.cycle + 1
        hart.fetch_ok = (not hart.syncm_block and hart.fetch_buf is None
                         and not hart.reserved)

    def _execute(self, hart, entry):
        machine = self.machine
        now = machine.cycle
        low = entry.low
        cls = low.cls

        if cls == _LOAD:
            addr = (entry.val0 + low.imm) & MASK32
            machine.schedule_load(self, hart, entry, low, addr)
            hart.stats.loads += 1
        elif cls == _STORE:
            addr = (entry.val0 + low.imm) & MASK32
            machine.schedule_store(self, hart, entry, low, addr, entry.val1)
            hart.stats.stores += 1
        elif cls == _BRANCH:
            taken = low.op(entry.val0, entry.val1)
            self._resolve_pc(
                hart, entry.pc + low.imm if taken else entry.pc + 4)
            entry.done = True
        elif cls == _ALU or cls == _MULDIV:
            # reached only via load_state_dict-resumed edge paths; the
            # tick's issue stage handles ALU inline/deferred
            a = entry.val0
            b = entry.val1 if low.nreads == 2 else low.imm
            self._finish_at(hart, entry, low.op(a, b), now + low.latency)
        else:
            EXEC_TABLE[cls](self, hart, entry, low)

    def _execute_p_ret(self, hart, entry):
        ra = entry.val0
        t0 = entry.val1
        if ra == 0:
            if t0 == 0xFFFFFFFF:
                action = ("exit", None, None)
            elif join_hart(t0) == hart.gid:
                action = ("wait", None, None)
            else:
                action = ("end", None, None)
        else:
            action = ("join", join_hart(t0), ra)
        entry.ret_action = action
        entry.done = True
        # no further fetch on this hart until a join or a new fork
        hart.pc = None
        hart.awaiting_nextpc = False
        hart.fetch_ok = False

    # ---- per-cycle ----------------------------------------------------------

    def tick(self):
        """The interpreter tick, with gated stage scans (see module doc).

        Stage-for-stage identical to ``Core.tick``: same rotating
        arbitration, same single-hart-per-stage selection, same
        metrics/sanitizer call sites — only the eligibility probing is
        restructured around the hoisted scoreboard flags.
        """
        harts = self.harts
        busy = False
        for hart in harts:
            if hart.pc is not None or hart.rob or hart.fetch_buf is not None:
                busy = True
                break
        machine = self.machine
        metrics = machine.metrics
        if not busy:
            if metrics is not None:
                metrics.idle(self.index, machine.cycle, 1)
            return False
        cycle = machine.cycle
        if metrics is not None and cycle >= metrics.edges[self.index]:
            metrics.roll(self.index, cycle)
        committed = False
        order = _ORDER

        # ---- commit ----
        for h in order[self._rr_commit]:
            hart = harts[h]
            rob = hart.rob
            if not rob:
                continue
            head = rob[0]
            if not head.done:
                continue
            if head.ret_action is not None:
                if hart.pred is not None and not hart.pred_done:
                    continue
                if hart.outstanding_mem != 0:
                    continue
            self._rr_commit = (h + 1) & 3
            rob.pop(0)
            hart.stats.retired += 1
            committed = True
            low = head.low
            if low.trap:
                if low.trap == 1:
                    machine.halt("ebreak")
                else:
                    machine.error("ecall is not supported on bare-metal LBP")
            elif head.ret_action is not None:
                self._commit_p_ret(hart, head)
            break

        # ---- writeback (gated on the earliest filled ready_at) ----
        if self._wb_wake <= cycle:
            for h in order[self._rr_wb]:
                hart = harts[h]
                rb = hart.rb
                if rb.busy and rb.value is not None and rb.ready_at <= cycle:
                    self._rr_wb = (h + 1) & 3
                    tag = rb.tag
                    value = rb.value
                    reg = rb.reg
                    rename = hart.rename
                    if reg != 0 and rename[reg] == tag:
                        hart.regs[reg] = value
                        rename[reg] = None
                    for waiter in hart.it:
                        hit = False
                        if waiter.wait0 == tag:
                            waiter.wait0 = None
                            waiter.val0 = value
                            waiter.nwaits -= 1
                            hit = True
                        if waiter.wait1 == tag:
                            waiter.wait1 = None
                            waiter.val1 = value
                            waiter.nwaits -= 1
                            hit = True
                        if hit and waiter.nwaits == 0:
                            hart.n_ready += 1
                    rb.rob.done = True
                    rb.busy = False
                    rb.tag = None
                    rb.value = None
                    rb.rob = None
                    break
            # a buffer was drained (or the gate was stale): re-derive
            # the earliest remaining wakeup (inlined _recompute_wb_wake;
            # this runs on ~90% of saturated cycles, the call costs)
            wake = _INF
            for hx in harts:
                rbx = hx.rb
                if rbx.busy and rbx.value is not None and rbx.ready_at < wake:
                    wake = rbx.ready_at
            self._wb_wake = wake

        # ---- issue (gated on any operand-ready waiting instruction) ----
        for h in order[self._rr_issue]:
            hart = harts[h]
            if not hart.n_ready:
                continue
            it = hart.it
            entry = None
            older_store_pending = False
            rb_busy = hart.rb.busy
            for candidate in it:
                if candidate.nwaits == 0:
                    low = candidate.low
                    if low.writes and rb_busy:
                        pass
                    else:
                        kind = low.issue_kind
                        if kind == 0:
                            entry = candidate
                            break
                        elif kind == 1:
                            if not older_store_pending:
                                entry = candidate
                                break
                        elif kind == 2:
                            if hart.re_buffers[low.re_slot] is not None:
                                entry = candidate
                                break
                        elif kind == 3:
                            if self.alloc_free_hart() is not None:
                                entry = candidate
                                break
                        elif kind == 4:
                            if hart.fork_tokens:
                                entry = candidate
                                break
                        else:  # p_syncm
                            if (candidate is it[0]
                                    and hart.outstanding_mem == 0):
                                entry = candidate
                                break
                if candidate.low.store_like:
                    older_store_pending = True
            if entry is None:
                continue
            self._rr_issue = (h + 1) & 3
            it.remove(entry)
            hart.n_ready -= 1
            entry.issued = True
            low = entry.low
            cls = low.cls
            if cls <= _MULDIV:  # ALU (0) or MULDIV (1): the hot path
                a = entry.val0
                b = entry.val1 if low.nreads == 2 else low.imm
                if low.writes:
                    if self._defer_alu:
                        machine._alu_pending.append((hart, entry, low, a, b))
                    else:
                        rb = hart.rb
                        rb.busy = True
                        rb.tag = entry.tag
                        rb.reg = low.rd
                        rb.value = low.op(a, b) & MASK32
                        ready_at = cycle + low.latency
                        rb.ready_at = ready_at
                        rb.rob = entry
                        if ready_at < self._wb_wake:
                            self._wb_wake = ready_at
                else:
                    low.op(a, b)  # rd == x0: result discarded
                    entry.done = True
            else:
                self._execute(hart, entry)
            break

        # ---- decode / rename ----
        rob_size = self._rob_size
        for h in order[self._rr_rename]:
            hart = harts[h]
            fetch_buf = hart.fetch_buf
            if fetch_buf is None or len(hart.rob) >= rob_size:
                continue
            self._rr_rename = (h + 1) & 3
            pc, low = fetch_buf
            hart.fetch_buf = None
            tag = self._tag + 1
            self._tag = tag

            nwaits = 0
            val0 = val1 = wait0 = wait1 = None
            rename = hart.rename
            nreads = low.nreads
            if nreads:
                reg = low.r1
                if reg == 0:
                    val0 = 0
                else:
                    wait0 = rename[reg]
                    if wait0 is None:
                        val0 = hart.regs[reg]
                    else:
                        nwaits = 1
                if nreads == 2:
                    reg = low.r2
                    if reg == 0:
                        val1 = 0
                    else:
                        wait1 = rename[reg]
                        if wait1 is None:
                            val1 = hart.regs[reg]
                        else:
                            nwaits += 1
            entry = SoAEntry(tag, low, pc, val0, val1, wait0, wait1, nwaits)
            hart.it.append(entry)
            hart.rob.append(entry)
            if nwaits == 0:
                hart.n_ready += 1
            if low.writes:
                rename[low.rd] = tag
            dec = low.dec_kind
            if dec == 5:  # p_fn: fall through + request the fork token
                machine.send_fork_req(self, hart)

            # next-pc determination (fetch resumes when it is known)
            if dec == 0 or dec == 5:
                hart.pc = pc + 4
                hart.awaiting_nextpc = False
                hart.fetch_ready_at = cycle + 1
                hart.fetch_ok = not hart.syncm_block
            elif dec == 2:
                pass  # resolved at issue; hart stays suspended
            elif dec == 1:
                hart.pc = (pc + low.imm) & MASK32
                hart.awaiting_nextpc = False
                hart.fetch_ready_at = cycle + 1
                hart.fetch_ok = not hart.syncm_block
            elif dec == 3:
                hart.pc = None  # halts (ebreak) / traps (ecall) at commit
                hart.awaiting_nextpc = False
            else:  # dec == 4, p_syncm: fall through, block further fetch
                hart.pc = pc + 4
                hart.awaiting_nextpc = False
                hart.fetch_ready_at = cycle + 1
                hart.syncm_block = True
            break

        # ---- fetch (gated on the collapsed predicate) ----
        for h in order[self._rr_fetch]:
            hart = harts[h]
            if hart.fetch_ok and cycle >= hart.fetch_ready_at:
                self._rr_fetch = (h + 1) & 3
                pc = hart.pc
                low = machine.lowered.get(pc)
                if low is None:  # non-code address: the slow error path
                    low = machine.fetch_instruction(pc, hart)
                hart.fetch_buf = (pc, low)
                hart.awaiting_nextpc = True  # suspended until next pc known
                hart.fetch_ok = False
                break
        if metrics is not None and not committed:
            metrics.stall(self, cycle)
        return True
