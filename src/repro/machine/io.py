"""Non-interruptible I/O: devices for the LBP machine (paper §6).

LBP has no interrupts.  Devices are memory-mapped; harts *poll* them
(an active wait on the input instruction), and values move to consumers
through ordinary loads or through ``p_swre``/``p_lwre`` dependencies when
a dedicated controller hart is used (fig. 17).  Every device here is
deterministic: either scripted (exact ready cycles) or seeded.

A device occupies two consecutive words:

* ``base``     — STATUS: reads 1 when a value is available, else 0;
* ``base + 4`` — VALUE: reads the current value (input devices) or
  accepts a write (output devices; writes are logged with their cycle).

Use :func:`attach_input` / :func:`attach_output` to wire a device into a
machine (works with both the cycle-accurate and the fast simulator, which
share the ``add_device`` interface).
"""

import random


class _StatusPort:
    __slots__ = ("device",)

    def __init__(self, device):
        self.device = device

    def read(self, cycle):
        return 1 if self.device.ready(cycle) else 0

    def write(self, cycle, value):
        raise ValueError("status port is read-only")


class _ValuePort:
    __slots__ = ("device",)

    def __init__(self, device):
        self.device = device

    def read(self, cycle):
        return self.device.value(cycle)

    def write(self, cycle, value):
        self.device.accept(cycle, value)


class ScriptedInput:
    """An input device producing scripted (ready_cycle, value) events.

    ``events`` is a list of (ready_cycle, value); the device presents each
    value once the cycle is reached and advances to the next event when
    the value is consumed (first VALUE read at/after ready).
    """

    def __init__(self, events):
        self.events = sorted(events)
        self.cursor = 0
        self.consumed_at = []  # cycle at which each value was first read

    def ready(self, cycle):
        return self.cursor < len(self.events) and \
            cycle >= self.events[self.cursor][0]

    def value(self, cycle):
        if not self.ready(cycle):
            return 0
        _ready, value = self.events[self.cursor]
        self.consumed_at.append(cycle)
        self.cursor += 1
        return value

    def accept(self, cycle, value):
        raise ValueError("input device is read-only")


class RandomInput(ScriptedInput):
    """Seeded-random arrivals: deterministic per seed, 'external' in spirit."""

    def __init__(self, seed, count, max_gap=500, max_value=1 << 16):
        rng = random.Random(seed)
        events = []
        cycle = 0
        for _ in range(count):
            cycle += rng.randrange(1, max_gap)
            events.append((cycle, rng.randrange(max_value)))
        super().__init__(events)


class Timer(ScriptedInput):
    """A periodic timer: ready every *period* cycles, value = tick index."""

    def __init__(self, period, ticks):
        super().__init__([(period * (i + 1), i + 1) for i in range(ticks)])


class Actuator:
    """An output device logging every (cycle, value) written to it."""

    def __init__(self):
        self.writes = []

    def ready(self, cycle):
        return 1  # always accepts

    def value(self, cycle):
        return self.writes[-1][1] if self.writes else 0

    def accept(self, cycle, value):
        self.writes.append((cycle, value))


def attach_input(machine, base_addr, device):
    """Map an input device's STATUS/VALUE words at *base_addr*."""
    machine.add_device(base_addr, _StatusPort(device))
    machine.add_device(base_addr + 4, _ValuePort(device))
    return device


def attach_output(machine, base_addr, device):
    """Map an output device's STATUS/VALUE words at *base_addr*."""
    machine.add_device(base_addr, _StatusPort(device))
    machine.add_device(base_addr + 4, _ValuePort(device))
    return device
