"""Two-pass assembler for RV32IM + X_PAR.

Accepts the GNU-flavoured syntax used in the paper's listings (figures
6-8): labels, ``lw ra, 0(sp)`` addressing, ``.text``/``.data``/``.bank``
directives, ``%hi``/``%lo`` relocations and the usual RISC-V pseudo
instructions (``li``, ``la``, ``mv``, ``call``, ``ret``, ``j`` ... plus the
paper's ``p_ret``).

Entry point: :func:`assemble` (source text → :class:`Program`).
"""

from repro.asm.errors import AsmError
from repro.asm.assembler import assemble
from repro.asm.program import Program

__all__ = ["AsmError", "Program", "assemble"]
