"""Operand expressions: parsing and evaluation.

Expressions appear in immediate operands and data directives.  Grammar
(loosest binding first)::

    expr   := or
    or     := xor ('|' xor)*
    xor    := and ('^' and)*
    and    := shift ('&' shift)*
    shift  := sum ('<<'|'>>' sum)*
    sum    := term (('+'|'-') term)*
    term   := unary (('*'|'/') unary)*
    unary  := ('-'|'~')* atom
    atom   := NUM | IDENT | '%hi' '(' expr ')' | '%lo' '(' expr ')'
            | '(' expr ')'

Expression nodes are plain tuples: ``("num", v)``, ``("sym", name)``,
``("bin", op, lhs, rhs)``, ``("neg", e)``, ``("inv", e)``, ``("hi", e)``,
``("lo", e)``.
"""

from repro.asm.errors import AsmError
from repro.isa.encoding import sign_extend

_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b else 0,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
}

_LEVELS = [["|"], ["^"], ["&"], ["<<", ">>"], ["+", "-"], ["*", "/"]]


class ExprParser:
    """Parses one expression from a token stream (shared cursor)."""

    def __init__(self, tokens, pos, line=None, source_name=None):
        self.tokens = tokens
        self.pos = pos
        self.line = line
        self.source_name = source_name

    def _peek(self):
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def _error(self, message):
        raise AsmError(message, self.line, self.source_name)

    def parse(self, level=0):
        if level == len(_LEVELS):
            return self._unary()
        node = self.parse(level + 1)
        while True:
            tok = self._peek()
            if tok is None or tok.kind != "PUNCT" or tok.value not in _LEVELS[level]:
                return node
            self.pos += 1
            rhs = self.parse(level + 1)
            node = ("bin", tok.value, node, rhs)

    def _unary(self):
        tok = self._peek()
        if tok is not None and tok.kind == "PUNCT" and tok.value == "-":
            self.pos += 1
            return ("neg", self._unary())
        if tok is not None and tok.kind == "PUNCT" and tok.value == "~":
            self.pos += 1
            return ("inv", self._unary())
        if tok is not None and tok.kind == "PUNCT" and tok.value == "+":
            self.pos += 1
            return self._unary()
        return self._atom()

    def _atom(self):
        tok = self._peek()
        if tok is None:
            self._error("expected expression")
        if tok.kind == "NUM":
            self.pos += 1
            return ("num", tok.value)
        if tok.kind == "IDENT":
            name = tok.value
            if name in ("%hi", "%lo"):
                self.pos += 1
                self._expect_punct("(")
                inner = self.parse()
                self._expect_punct(")")
                return ("hi" if name == "%hi" else "lo", inner)
            self.pos += 1
            return ("sym", name)
        if tok.kind == "PUNCT" and tok.value == "(":
            self.pos += 1
            inner = self.parse()
            self._expect_punct(")")
            return inner
        self._error("unexpected token %r in expression" % (tok.value,))

    def _expect_punct(self, value):
        tok = self._peek()
        if tok is None or tok.kind != "PUNCT" or tok.value != value:
            self._error("expected %r" % value)
        self.pos += 1


def hi20(value):
    """The %hi relocation: upper 20 bits, adjusted for signed %lo."""
    return ((value + 0x800) >> 12) & 0xFFFFF


def lo12(value):
    """The %lo relocation: signed low 12 bits."""
    return sign_extend(value & 0xFFF, 12)


def eval_expr(node, symbols, line=None, source_name=None):
    """Evaluate an expression node against a symbol table."""
    kind = node[0]
    if kind == "num":
        return node[1]
    if kind == "sym":
        name = node[1]
        if name not in symbols:
            raise AsmError("undefined symbol %r" % name, line, source_name)
        return symbols[name]
    if kind == "bin":
        lhs = eval_expr(node[2], symbols, line, source_name)
        rhs = eval_expr(node[3], symbols, line, source_name)
        return _BINOPS[node[1]](lhs, rhs)
    if kind == "neg":
        return -eval_expr(node[1], symbols, line, source_name)
    if kind == "inv":
        return ~eval_expr(node[1], symbols, line, source_name)
    if kind == "hi":
        return hi20(eval_expr(node[1], symbols, line, source_name))
    if kind == "lo":
        return lo12(eval_expr(node[1], symbols, line, source_name))
    raise AssertionError("bad expression node %r" % (node,))


def try_fold(node):
    """Evaluate a symbol-free expression, or return None if it has symbols."""
    kind = node[0]
    if kind == "num":
        return node[1]
    if kind == "sym":
        return None
    if kind == "bin":
        lhs = try_fold(node[2])
        rhs = try_fold(node[3])
        if lhs is None or rhs is None:
            return None
        return _BINOPS[node[1]](lhs, rhs)
    if kind == "neg":
        inner = try_fold(node[1])
        return None if inner is None else -inner
    if kind == "inv":
        inner = try_fold(node[1])
        return None if inner is None else ~inner
    if kind == "hi":
        inner = try_fold(node[1])
        return None if inner is None else hi20(inner)
    if kind == "lo":
        inner = try_fold(node[1])
        return None if inner is None else lo12(inner)
    raise AssertionError("bad expression node %r" % (node,))
