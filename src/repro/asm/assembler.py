"""The two-pass assembler.

Pass 1 parses every line, expands pseudo-instructions, assigns addresses
(all real instructions are 4 bytes, so sizes are known immediately) and
binds labels.  Pass 2 evaluates operand expressions against the completed
symbol table, builds decoded :class:`Instruction` objects, encodes them to
binary and materialises data segments.
"""

from repro import memmap
from repro.asm.errors import AsmError
from repro.asm.expr import ExprParser, eval_expr, try_fold, hi20, lo12
from repro.asm.lexer import tokenize_line
from repro.asm.program import Program, Segment
from repro.isa.encoding import encode_instruction, sign_extend
from repro.isa.instruction import Instruction
from repro.isa.registers import is_register_name, reg_num
from repro.isa.spec import INSTR_SPECS

_ZERO = ("num", 0)


class _Operands:
    """Cursor over one line's operand tokens."""

    def __init__(self, tokens, pos, line, source_name):
        self.tokens = tokens
        self.pos = pos
        self.line = line
        self.source_name = source_name

    def error(self, message):
        raise AsmError(message, self.line, self.source_name)

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def at_end(self):
        return self.pos >= len(self.tokens)

    def end(self):
        if not self.at_end():
            self.error("trailing tokens after instruction")

    def comma(self):
        tok = self.peek()
        if tok is None or tok.kind != "PUNCT" or tok.value != ",":
            self.error("expected ','")
        self.pos += 1

    def reg(self):
        tok = self.peek()
        if tok is None or tok.kind != "IDENT" or not is_register_name(tok.value):
            self.error("expected register, got %r" % (tok.value if tok else "end"))
        self.pos += 1
        return reg_num(tok.value)

    def looks_like_reg(self):
        tok = self.peek()
        return tok is not None and tok.kind == "IDENT" and is_register_name(tok.value)

    def expr(self):
        parser = ExprParser(self.tokens, self.pos, self.line, self.source_name)
        node = parser.parse()
        self.pos = parser.pos
        return node

    def mem(self):
        """Parse ``imm(reg)`` (imm optional) → (expr, reg)."""
        tok = self.peek()
        offset = _ZERO
        if not (tok is not None and tok.kind == "PUNCT" and tok.value == "("
                and self._paren_is_base()):
            offset = self.expr()
        tok = self.peek()
        if tok is None or tok.kind != "PUNCT" or tok.value != "(":
            self.error("expected '(' of memory operand")
        self.pos += 1
        base = self.reg()
        tok = self.peek()
        if tok is None or tok.kind != "PUNCT" or tok.value != ")":
            self.error("expected ')' of memory operand")
        self.pos += 1
        return offset, base

    def _paren_is_base(self):
        """True when the '(' at the cursor opens a base-register group."""
        if self.pos + 2 < len(self.tokens):
            reg_tok = self.tokens[self.pos + 1]
            close = self.tokens[self.pos + 2]
            return (
                reg_tok.kind == "IDENT"
                and is_register_name(reg_tok.value)
                and close.kind == "PUNCT"
                and close.value == ")"
            )
        return False


class _Instr:
    """A pending instruction: fields plus unresolved operand expressions."""

    __slots__ = ("mnemonic", "rd", "rs1", "rs2", "expr", "mode", "addr", "line")

    def __init__(self, mnemonic, rd=0, rs1=0, rs2=0, expr=None, mode="abs"):
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.expr = expr if expr is not None else _ZERO
        self.mode = mode  # "abs" or "rel" (pc-relative)
        self.addr = None
        self.line = None


RA, SP, T0, ZERO = reg_num("ra"), reg_num("sp"), reg_num("t0"), 0


def _expand_li(ops):
    rd = ops.reg()
    ops.comma()
    expr = ops.expr()
    ops.end()
    value = try_fold(expr)
    if value is not None:
        value = sign_extend(value & 0xFFFFFFFF, 32)
        if -2048 <= value <= 2047:
            return [_Instr("addi", rd=rd, rs1=ZERO, expr=("num", value))]
        out = [_Instr("lui", rd=rd, expr=("num", hi20(value)))]
        low = lo12(value)
        if low:
            out.append(_Instr("addi", rd=rd, rs1=rd, expr=("num", low)))
        return out
    return [
        _Instr("lui", rd=rd, expr=("hi", expr)),
        _Instr("addi", rd=rd, rs1=rd, expr=("lo", expr)),
    ]


def _expand_la(ops):
    rd = ops.reg()
    ops.comma()
    expr = ops.expr()
    ops.end()
    return [
        _Instr("lui", rd=rd, expr=("hi", expr)),
        _Instr("addi", rd=rd, rs1=rd, expr=("lo", expr)),
    ]


def _expand_jal(ops):
    first = ops.reg() if ops.looks_like_reg() else None
    if first is not None and not ops.at_end():
        ops.comma()
        expr = ops.expr()
        ops.end()
        return [_Instr("jal", rd=first, expr=expr, mode="rel")]
    if first is not None:
        # "jal rs" would be odd; treat a bare register as an error.
        ops.error("jal needs a target label")
    expr = ops.expr()
    ops.end()
    return [_Instr("jal", rd=RA, expr=expr, mode="rel")]


def _expand_jalr(ops):
    first = ops.reg()
    if ops.at_end():
        return [_Instr("jalr", rd=RA, rs1=first, expr=_ZERO)]
    ops.comma()
    if ops.looks_like_reg():
        rs1 = ops.reg()
        ops.comma()
        expr = ops.expr()
        ops.end()
        return [_Instr("jalr", rd=first, rs1=rs1, expr=expr)]
    offset, base = ops.mem()
    ops.end()
    return [_Instr("jalr", rd=first, rs1=base, expr=offset)]


def _unary_pseudo(real, rs1_from, rs2_from, imm=None):
    """Build an expander for `op rd, rs` one-source pseudos."""

    def expand(ops):
        rd = ops.reg()
        ops.comma()
        rs = ops.reg()
        ops.end()
        ins = _Instr(real, rd=rd, expr=("num", imm or 0))
        if rs1_from == "rs":
            ins.rs1 = rs
        if rs2_from == "rs":
            ins.rs2 = rs
        return [ins]

    return expand


def _branch_zero(real, reg_field):
    def expand(ops):
        rs = ops.reg()
        ops.comma()
        expr = ops.expr()
        ops.end()
        ins = _Instr(real, expr=expr, mode="rel")
        setattr(ins, reg_field, rs)
        return [ins]

    return expand


def _branch_swapped(real):
    def expand(ops):
        a = ops.reg()
        ops.comma()
        b = ops.reg()
        ops.comma()
        expr = ops.expr()
        ops.end()
        return [_Instr(real, rs1=b, rs2=a, expr=expr, mode="rel")]

    return expand


def _fixed(*protos):
    def expand(ops):
        ops.end()
        return [
            _Instr(mn, rd=rd, rs1=rs1, rs2=rs2, expr=_ZERO)
            for (mn, rd, rs1, rs2) in protos
        ]

    return expand


def _expand_j(ops):
    expr = ops.expr()
    ops.end()
    return [_Instr("jal", rd=ZERO, expr=expr, mode="rel")]


def _expand_call(ops):
    expr = ops.expr()
    ops.end()
    return [_Instr("jal", rd=RA, expr=expr, mode="rel")]


def _expand_tail(ops):
    expr = ops.expr()
    ops.end()
    return [_Instr("jal", rd=ZERO, expr=expr, mode="rel")]


def _expand_jr(ops):
    rs = ops.reg()
    ops.end()
    return [_Instr("jalr", rd=ZERO, rs1=rs, expr=_ZERO)]


_PSEUDOS = {
    "nop": _fixed(("addi", 0, 0, 0)),
    "li": _expand_li,
    "la": _expand_la,
    "mv": _unary_pseudo("addi", "rs", None),
    "not": _unary_pseudo("xori", "rs", None, imm=-1),
    "neg": _unary_pseudo("sub", None, "rs"),
    "seqz": _unary_pseudo("sltiu", "rs", None, imm=1),
    "snez": _unary_pseudo("sltu", None, "rs"),
    "sltz": _unary_pseudo("slt", "rs", None),
    "sgtz": _unary_pseudo("slt", None, "rs"),
    "beqz": _branch_zero("beq", "rs1"),
    "bnez": _branch_zero("bne", "rs1"),
    "bgez": _branch_zero("bge", "rs1"),
    "bltz": _branch_zero("blt", "rs1"),
    "blez": _branch_zero("bge", "rs2"),
    "bgtz": _branch_zero("blt", "rs2"),
    "bgt": _branch_swapped("blt"),
    "ble": _branch_swapped("bge"),
    "bgtu": _branch_swapped("bltu"),
    "bleu": _branch_swapped("bgeu"),
    "j": _expand_j,
    "jal": _expand_jal,
    "jalr": _expand_jalr,
    "jr": _expand_jr,
    "call": _expand_call,
    "tail": _expand_tail,
    "ret": _fixed(("jalr", 0, RA, 0)),
    "p_ret": _fixed(("p_jalr", 0, RA, T0)),
}

# `not` negates with xori -1; patch its immediate handling:


def _parse_real(mnemonic, spec, ops):
    shape = spec.operands
    ins = _Instr(mnemonic)
    if shape == "":
        ops.end()
        return [ins]
    if shape == "rd":
        ins.rd = ops.reg()
    elif shape == "rd,rs1":
        ins.rd = ops.reg()
        ops.comma()
        ins.rs1 = ops.reg()
    elif shape == "rd,rs1,rs2":
        ins.rd = ops.reg()
        ops.comma()
        ins.rs1 = ops.reg()
        ops.comma()
        ins.rs2 = ops.reg()
    elif shape == "rd,rs1,imm":
        ins.rd = ops.reg()
        ops.comma()
        ins.rs1 = ops.reg()
        ops.comma()
        ins.expr = ops.expr()
    elif shape == "rd,imm":
        ins.rd = ops.reg()
        ops.comma()
        ins.expr = ops.expr()
    elif shape == "rd,imm(rs1)":
        ins.rd = ops.reg()
        ops.comma()
        ins.expr, ins.rs1 = ops.mem()
    elif shape == "rs2,imm(rs1)":
        ins.rs2 = ops.reg()
        ops.comma()
        ins.expr, ins.rs1 = ops.mem()
    elif shape == "rs1,rs2,imm":
        ins.rs1 = ops.reg()
        ops.comma()
        ins.rs2 = ops.reg()
        ops.comma()
        ins.expr = ops.expr()
    elif shape == "rd,label":
        ins.rd = ops.reg()
        ops.comma()
        ins.expr = ops.expr()
        ins.mode = "rel"
    elif shape == "rs1,rs2,label":
        ins.rs1 = ops.reg()
        ops.comma()
        ins.rs2 = ops.reg()
        ops.comma()
        ins.expr = ops.expr()
        ins.mode = "rel"
    elif shape == "rd,rs1,label":
        ins.rd = ops.reg()
        ops.comma()
        ins.rs1 = ops.reg()
        ops.comma()
        ins.expr = ops.expr()
        ins.mode = "rel"
    else:
        raise AssertionError("unhandled shape %r" % (shape,))
    ops.end()
    if ins.expr is None:
        ins.expr = _ZERO
    return [ins]


class Assembler:
    """Assembles one translation unit into a :class:`Program`."""

    def __init__(self, source_name="<asm>", default_bank=0):
        self.source_name = source_name
        self.symbols = {}
        self.equs = []  # deferred (name, expr, line)
        self.instr_items = []
        self.data_items = []  # (bank, addr, kind, payload, line)
        self.code_cursor = memmap.CODE_BASE
        self.data_cursors = {}
        self.section = "text"
        self.bank = default_bank
        self.line = 0

    # ---- pass 1 -----------------------------------------------------------

    def _error(self, message):
        raise AsmError(message, self.line, self.source_name)

    def _data_cursor(self):
        if self.bank not in self.data_cursors:
            self.data_cursors[self.bank] = memmap.global_bank_base(self.bank)
        return self.data_cursors[self.bank]

    def _advance_data(self, nbytes):
        self.data_cursors[self.bank] = self._data_cursor() + nbytes

    def _bind_label(self, name):
        if name in self.symbols:
            self._error("duplicate label %r" % name)
        if self.section == "text":
            self.symbols[name] = self.code_cursor
        else:
            self.symbols[name] = self._data_cursor()

    def _emit_instrs(self, pending):
        if self.section != "text":
            self._error("instruction outside .text")
        for item in pending:
            item.addr = self.code_cursor
            item.line = self.line
            self.instr_items.append(item)
            self.code_cursor += 4

    def _emit_data(self, kind, payload, size):
        if self.section == "text":
            self._error("data directive inside .text")
        addr = self._data_cursor()
        self.data_items.append((self.bank, addr, kind, payload, self.line))
        self._advance_data(size)

    def _directive(self, name, ops):
        if name == ".text":
            ops.end()
            self.section = "text"
        elif name in (".data", ".bss", ".rodata"):
            ops.end()
            self.section = "data"
        elif name == ".bank":
            expr = ops.expr()
            ops.end()
            bank = try_fold(expr)
            if bank is None or bank < 0:
                self._error(".bank needs a constant bank number")
            self.section = "data"
            self.bank = bank
        elif name == ".word":
            self._data_list(ops, 4)
        elif name == ".half":
            self._data_list(ops, 2)
        elif name == ".byte":
            self._data_list(ops, 1)
        elif name == ".space":
            expr = ops.expr()
            fill = 0
            if not ops.at_end():
                ops.comma()
                fill_expr = ops.expr()
                fill = try_fold(fill_expr)
                if fill is None:
                    self._error(".space fill must be constant")
            ops.end()
            size = try_fold(expr)
            if size is None or size < 0:
                self._error(".space needs a constant size")
            self._emit_data("fill", (size, fill & 0xFF), size)
        elif name == ".align":
            expr = ops.expr()
            ops.end()
            power = try_fold(expr)
            if power is None or not 0 <= power <= 20:
                self._error(".align needs a small constant")
            alignment = 1 << power
            if self.section == "text":
                while self.code_cursor % alignment:
                    self._emit_instrs([_Instr("addi", expr=_ZERO)])
            else:
                cursor = self._data_cursor()
                pad = -cursor % alignment
                if pad:
                    self._emit_data("fill", (pad, 0), pad)
        elif name in (".ascii", ".asciz"):
            tok = ops.peek()
            if tok is None or tok.kind != "STR":
                self._error("%s needs a string" % name)
            ops.pos += 1
            ops.end()
            raw = tok.value.encode("latin-1")
            if name == ".asciz":
                raw += b"\0"
            self._emit_data("bytes", raw, len(raw))
        elif name in (".equ", ".set"):
            tok = ops.peek()
            if tok is None or tok.kind != "IDENT":
                self._error("%s needs a symbol name" % name)
            ops.pos += 1
            ops.comma()
            expr = ops.expr()
            ops.end()
            self.equs.append((tok.value, expr, self.line))
        elif name in (".globl", ".global", ".type", ".size", ".section",
                      ".option", ".file", ".p2align", ".comm", ".ident"):
            ops.pos = len(ops.tokens)  # accepted and ignored
        else:
            self._error("unknown directive %r" % name)

    def _data_list(self, ops, size):
        exprs = [ops.expr()]
        while not ops.at_end():
            ops.comma()
            exprs.append(ops.expr())
        self._emit_data("words", (size, exprs), size * len(exprs))

    def feed_line(self, text):
        self.line += 1
        tokens = tokenize_line(text, self.line, self.source_name)
        pos = 0
        # labels: IDENT ':' (may repeat)
        while (
            pos + 1 < len(tokens)
            and tokens[pos].kind == "IDENT"
            and tokens[pos + 1].kind == "PUNCT"
            and tokens[pos + 1].value == ":"
        ):
            self._bind_label(tokens[pos].value)
            pos += 2
        if pos >= len(tokens):
            return
        head = tokens[pos]
        if head.kind != "IDENT":
            self._error("expected mnemonic or directive")
        ops = _Operands(tokens, pos + 1, self.line, self.source_name)
        name = head.value
        if name.startswith("."):
            self._directive(name, ops)
            return
        mnemonic = name.lower()
        if mnemonic in _PSEUDOS:
            self._emit_instrs(_PSEUDOS[mnemonic](ops))
            return
        spec = INSTR_SPECS.get(mnemonic)
        if spec is None:
            self._error("unknown mnemonic %r" % name)
        self._emit_instrs(_parse_real(mnemonic, spec, ops))

    # ---- pass 2 -----------------------------------------------------------

    def _resolve_equs(self):
        pending = list(self.equs)
        progress = True
        while pending and progress:
            progress = False
            remaining = []
            for name, expr, line in pending:
                try:
                    value = eval_expr(expr, self.symbols, line, self.source_name)
                except AsmError:
                    remaining.append((name, expr, line))
                    continue
                if name in self.symbols:
                    raise AsmError("duplicate symbol %r" % name, line, self.source_name)
                self.symbols[name] = value
                progress = True
            pending = remaining
        if pending:
            name, _, line = pending[0]
            raise AsmError("unresolvable .equ %r" % name, line, self.source_name)

    def finish(self):
        self._resolve_equs()
        program = Program()
        program.source_name = self.source_name
        program.symbols = dict(self.symbols)

        code = bytearray()
        for item in self.instr_items:
            value = eval_expr(item.expr, self.symbols, item.line, self.source_name)
            imm = value - item.addr if item.mode == "rel" else value
            spec = INSTR_SPECS[item.mnemonic]
            ins = Instruction(
                item.mnemonic, rd=item.rd, rs1=item.rs1, rs2=item.rs2,
                imm=imm, spec=spec, addr=item.addr,
            )
            try:
                word = encode_instruction(ins)
            except ValueError as exc:
                raise AsmError(str(exc), item.line, self.source_name) from None
            code += word.to_bytes(4, "little")
            program.instructions[item.addr] = ins
        if code:
            program.segments.append(Segment("code", None, memmap.CODE_BASE, code))

        banks = {}
        for bank, addr, kind, payload, line in self.data_items:
            base = memmap.global_bank_base(bank)
            buf = banks.setdefault(bank, bytearray())
            offset = addr - base
            if len(buf) < offset:
                buf.extend(b"\0" * (offset - len(buf)))
            if kind == "fill":
                size, fill = payload
                buf.extend(bytes([fill]) * size)
            elif kind == "bytes":
                buf.extend(payload)
            elif kind == "words":
                size, exprs = payload
                for expr in exprs:
                    value = eval_expr(expr, self.symbols, line, self.source_name)
                    buf.extend((value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))
            else:
                raise AssertionError(kind)
        for bank in sorted(banks):
            program.segments.append(
                Segment("data", bank, memmap.global_bank_base(bank), banks[bank])
            )
        return program


def assemble(source, source_name="<asm>", default_bank=0):
    """Assemble *source* text into a :class:`Program`."""
    assembler = Assembler(source_name, default_bank)
    for raw_line in source.splitlines():
        assembler.feed_line(raw_line)
    return assembler.finish()
