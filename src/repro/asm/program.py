"""Assembled program image: code and data segments plus symbols.

A :class:`Program` is what the assembler produces and what both simulators
load.  Code is kept twice: as raw bytes (so encode/decode round-trips are
honest) and as pre-decoded :class:`~repro.isa.instruction.Instruction`
objects keyed by address (so simulators never re-decode in their hot
loops).
"""

from repro import memmap


class Segment:
    """A contiguous run of initialised memory.

    Attributes:
        kind: ``"code"`` or ``"data"``.
        bank: shared-bank number for data segments (None for code).
        base: start byte address.
        data: bytearray contents.
    """

    __slots__ = ("kind", "bank", "base", "data")

    def __init__(self, kind, bank, base, data):
        self.kind = kind
        self.bank = bank
        self.base = base
        self.data = data

    @property
    def end(self):
        return self.base + len(self.data)

    def __repr__(self):
        return "Segment(%s, bank=%r, base=0x%x, len=%d)" % (
            self.kind,
            self.bank,
            self.base,
            len(self.data),
        )


class Program:
    """An assembled, fully resolved program image."""

    def __init__(self):
        self.segments = []
        self.symbols = {}
        #: decoded instructions keyed by byte address
        self.instructions = {}
        self.source_name = None

    @property
    def entry(self):
        """Program entry address: ``_start`` if defined, else ``main``."""
        for name in ("_start", "main"):
            if name in self.symbols:
                return self.symbols[name]
        raise KeyError("program defines neither _start nor main")

    def symbol(self, name):
        """Address of *name*; raises KeyError with context if missing."""
        try:
            return self.symbols[name]
        except KeyError:
            raise KeyError(
                "undefined symbol %r in %s" % (name, self.source_name or "program")
            ) from None

    def code_segments(self):
        return [seg for seg in self.segments if seg.kind == "code"]

    def data_segments(self):
        return [seg for seg in self.segments if seg.kind == "data"]

    def code_size(self):
        return sum(len(seg.data) for seg in self.code_segments())

    def instruction_at(self, addr):
        """Decoded instruction at *addr* (KeyError if not code)."""
        return self.instructions[addr]

    def read_word_initial(self, addr):
        """Read a 32-bit little-endian word from the initial image.

        Returns None when the address is not covered by any segment.
        """
        for seg in self.segments:
            if seg.base <= addr and addr + 4 <= seg.end:
                off = addr - seg.base
                return int.from_bytes(seg.data[off : off + 4], "little")
        return None

    def data_bank_image(self, bank):
        """All (offset, bytes) pieces destined for shared bank *bank*."""
        pieces = []
        base = memmap.global_bank_base(bank)
        for seg in self.data_segments():
            if seg.bank == bank:
                pieces.append((seg.base - base, bytes(seg.data)))
        return pieces

    def disassembly(self):
        """Human-readable listing of the code (for debugging and docs)."""
        from repro.isa.disasm import disassemble

        addr_to_label = {}
        for name, addr in self.symbols.items():
            addr_to_label.setdefault(addr, []).append(name)
        lines = []
        for addr in sorted(self.instructions):
            for label in sorted(addr_to_label.get(addr, ())):
                lines.append("%s:" % label)
            lines.append("  %08x: %s" % (addr, disassemble(self.instructions[addr])))
        return "\n".join(lines)
