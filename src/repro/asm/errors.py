"""Assembler error type with source-position context."""


class AsmError(Exception):
    """A syntax or semantic error in assembly source.

    Attributes:
        message: bare description.
        line: 1-based source line number (or None).
        source_name: file or unit name (or None).
    """

    def __init__(self, message, line=None, source_name=None):
        self.message = message
        self.line = line
        self.source_name = source_name
        location = ""
        if source_name is not None:
            location += "%s:" % source_name
        if line is not None:
            location += "%d:" % line
        if location:
            location += " "
        super().__init__(location + message)
