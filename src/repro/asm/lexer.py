"""Line lexer for assembly source.

Splits one logical line into tokens.  Token kinds:

* ``IDENT``  — mnemonics, labels, symbols, register names, directives
  (directives keep their leading dot), ``%hi`` / ``%lo`` keep the percent.
* ``NUM``    — integer literal (decimal, ``0x`` hex, ``0b`` binary, octal,
  or character constant), value already converted.
* ``PUNCT``  — one of ``, ( ) : + - * / << >> &  | ^ ~``.
* ``STR``    — double-quoted string (value unescaped).
"""

from repro.asm.errors import AsmError

PUNCT_TWO = ("<<", ">>")
PUNCT_ONE = ",():+-*/&|^~"

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "\\": "\\", "'": "'", '"': '"',
}


class Token:
    __slots__ = ("kind", "value", "col")

    def __init__(self, kind, value, col):
        self.kind = kind
        self.value = value
        self.col = col

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


def _is_ident_start(ch):
    return ch.isalpha() or ch in "._$%"


def _is_ident(ch):
    return ch.isalnum() or ch in "._$"


def tokenize_line(text, line=None, source_name=None):
    """Tokenize one source line (comments already allowed in-line)."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t":
            i += 1
            continue
        if ch == "#" or text.startswith("//", i):
            break  # comment to end of line
        col = i
        if text.startswith("<<", i) or text.startswith(">>", i):
            tokens.append(Token("PUNCT", text[i : i + 2], col))
            i += 2
            continue
        if ch in PUNCT_ONE:
            tokens.append(Token("PUNCT", ch, col))
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            literal = text[i:j].replace("_", "")
            try:
                if len(literal) > 1 and literal[0] == "0" and literal[1] in "01234567":
                    value = int(literal, 8)  # GNU-as-style octal
                else:
                    value = int(literal, 0)
            except ValueError:
                raise AsmError("bad numeric literal %r" % literal, line, source_name)
            tokens.append(Token("NUM", value, col))
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and text[j] == "\\":
                if j + 2 >= n or text[j + 2] != "'":
                    raise AsmError("bad character literal", line, source_name)
                escaped = _ESCAPES.get(text[j + 1])
                if escaped is None:
                    raise AsmError("bad escape %r" % text[j + 1], line, source_name)
                tokens.append(Token("NUM", ord(escaped), col))
                i = j + 3
            else:
                if j + 1 >= n or text[j + 1] != "'":
                    raise AsmError("bad character literal", line, source_name)
                tokens.append(Token("NUM", ord(text[j]), col))
                i = j + 2
            continue
        if ch == '"':
            j = i + 1
            parts = []
            while j < n and text[j] != '"':
                if text[j] == "\\":
                    if j + 1 >= n:
                        raise AsmError("unterminated string", line, source_name)
                    escaped = _ESCAPES.get(text[j + 1])
                    if escaped is None:
                        raise AsmError("bad escape %r" % text[j + 1], line, source_name)
                    parts.append(escaped)
                    j += 2
                else:
                    parts.append(text[j])
                    j += 1
            if j >= n:
                raise AsmError("unterminated string", line, source_name)
            tokens.append(Token("STR", "".join(parts), col))
            i = j + 1
            continue
        if _is_ident_start(ch):
            j = i + 1
            while j < n and _is_ident(text[j]):
                j += 1
            tokens.append(Token("IDENT", text[i:j], col))
            i = j
            continue
        raise AsmError("unexpected character %r" % ch, line, source_name)
    return tokens
