"""A classic OS-scheduled SMP timing model (the determinism contrast).

The paper's introduction argues that on a conventional multicore stack —
preemptive OS scheduler, timer interrupts, cache-coherent memory,
migrations — the *timing* of a parallel run is not repeatable even when
its *result* is, which is why "measuring a speedup is a complex and far
from scientific process" and why real-time systems shy away from
parallelism.

This model makes that argument quantitative without rebuilding Linux: it
schedules the same logical tasks (instruction counts taken from the LBP
workload) on an N-core machine, but perturbs the timeline the way a real
stack does, with a seeded RNG standing in for the machine state a real OS
inherits from the environment (interrupt arrival phases, scheduling
decisions, cache temperature):

* a timer interrupt every ``timeslice`` ± jitter cycles steals
  ``interrupt_cost`` cycles and may trigger a reschedule;
* a rescheduled thread may migrate (probability ``migration_prob``),
  paying ``migration_cost`` cycles of cache-warmup;
* background OS noise steals short slices at random points.

Two runs with the same seed are identical (the model itself is
deterministic); two runs with different seeds — i.e. two *real* runs —
differ in both total cycles and the event trace, while producing the same
logical result.  Experiment E4 contrasts this with LBP, where repeated
runs are cycle-identical *by construction*.
"""

import random


class TaskResult:
    __slots__ = ("task_id", "start", "end", "migrations", "interrupts")

    def __init__(self, task_id):
        self.task_id = task_id
        self.start = None
        self.end = None
        self.migrations = 0
        self.interrupts = 0


class RunStats:
    def __init__(self, cycles, tasks, trace):
        self.cycles = cycles
        self.tasks = tasks
        self.trace = trace

    @property
    def migrations(self):
        return sum(t.migrations for t in self.tasks)

    @property
    def interrupts(self):
        return sum(t.interrupts for t in self.tasks)


class ClassicSMP:
    """N-core preemptive machine with seeded scheduling nondeterminism."""

    def __init__(
        self,
        num_cores,
        seed=0,
        timeslice=10_000,
        timeslice_jitter=0.2,
        interrupt_cost=400,
        migration_prob=0.15,
        migration_cost=2_000,
        noise_prob=0.05,
        noise_cost=1_500,
        ipc=1.0,
    ):
        self.num_cores = num_cores
        self.seed = seed
        self.timeslice = timeslice
        self.timeslice_jitter = timeslice_jitter
        self.interrupt_cost = interrupt_cost
        self.migration_prob = migration_prob
        self.migration_cost = migration_cost
        self.noise_prob = noise_prob
        self.noise_cost = noise_cost
        self.ipc = ipc

    def run_tasks(self, instruction_counts):
        """Schedule tasks (given as instruction counts); returns RunStats.

        Tasks are dealt round-robin to cores, then each core's timeline is
        advanced with seeded interrupt/migration/noise perturbations.
        Deterministic per (seed, inputs); different per seed.
        """
        rng = random.Random(self.seed)
        tasks = [TaskResult(i) for i in range(len(instruction_counts))]
        remaining = [count / self.ipc for count in instruction_counts]
        core_time = [0.0] * self.num_cores
        run_queue = list(range(len(instruction_counts)))
        assignment = {tid: tid % self.num_cores for tid in run_queue}
        trace = []

        while run_queue:
            # pick the earliest-available core that has work
            tid = run_queue.pop(0)
            core = assignment[tid]
            now = core_time[core]
            if tasks[tid].start is None:
                tasks[tid].start = now
                trace.append((now, core, "start", tid))
            slice_len = self.timeslice * (
                1.0 + self.timeslice_jitter * (2.0 * rng.random() - 1.0)
            )
            work = min(remaining[tid], slice_len)
            now += work
            remaining[tid] -= work
            if remaining[tid] <= 0:
                tasks[tid].end = now
                trace.append((now, core, "end", tid))
                core_time[core] = now
                continue
            # timer interrupt fires
            tasks[tid].interrupts += 1
            now += self.interrupt_cost
            trace.append((now, core, "interrupt", tid))
            if rng.random() < self.noise_prob:
                now += self.noise_cost
                trace.append((now, core, "os_noise", tid))
            if rng.random() < self.migration_prob:
                new_core = rng.randrange(self.num_cores)
                if new_core != core:
                    tasks[tid].migrations += 1
                    assignment[tid] = new_core
                    now += self.migration_cost
                    trace.append((now, new_core, "migrate", tid))
            core_time[core] = now
            run_queue.append(tid)

        total = max((t.end for t in tasks), default=0.0)
        return RunStats(int(round(total)), tasks, trace)

    def run_many(self, instruction_counts, runs):
        """Paper-style methodology: many runs, report (min, avg, max)."""
        cycles = []
        for run_index in range(runs):
            model = ClassicSMP(
                self.num_cores,
                seed=self.seed + run_index,
                timeslice=self.timeslice,
                timeslice_jitter=self.timeslice_jitter,
                interrupt_cost=self.interrupt_cost,
                migration_prob=self.migration_prob,
                migration_cost=self.migration_cost,
                noise_prob=self.noise_prob,
                noise_cost=self.noise_cost,
                ipc=self.ipc,
            )
            cycles.append(model.run_tasks(instruction_counts).cycles)
        return min(cycles), sum(cycles) / len(cycles), max(cycles)
