"""Analytic Knights-Landing-class model (figure 21's Xeon Phi 7210 bars).

We have no physical Xeon Phi; the paper's comparison uses only two
numbers for the tiled matmul — retired instructions and cycles (best of
1000 runs, PAPI) — and interprets them through peak-vs-achieved IPC.
Both derive from microarchitectural parameters this model captures:

* 64 cores × 4 SMT threads, 2 VPUs per core, AVX-512 (16 int32 lanes);
* peak 6 µops/cycle per core (2 integer + 2 memory + 2 vector);
* partial auto-vectorization of the tiled loop: the strided Y access
  defeats clean 16-lane vectorization, so the effective instruction
  reduction over scalar code is ``vector_factor`` (default 2.3×, the
  ratio the paper itself reports: LBP 73 M vs Xeon 32 M ≈ 2.28);
* per-core achieved IPC ``achieved_ipc`` well below peak (default 1.28,
  ~21 % of 6 — the paper's measured point; memory-bound tiled code on
  KNL typically lands there).

The model is parameterised so the ablation bench can sweep the two
efficiency factors; the defaults reproduce the paper's *shape*: ~2.3×
fewer instructions and ~3× fewer cycles than the 64-core LBP, at a much
lower fraction of peak than LBP reaches.
"""


class XeonPhiModel:
    def __init__(
        self,
        cores=64,
        threads_per_core=4,
        vector_lanes=16,
        peak_ipc_per_core=6.0,
        vector_factor=2.3,
        achieved_ipc_per_core=1.28,
        scalar_instr_per_mac=7.0,
    ):
        self.cores = cores
        self.threads_per_core = threads_per_core
        self.vector_lanes = vector_lanes
        self.peak_ipc_per_core = peak_ipc_per_core
        self.vector_factor = vector_factor
        self.achieved_ipc_per_core = achieved_ipc_per_core
        #: instructions a scalar RISC tiled loop spends per multiply-accumulate
        #: (paper fig. 18: 2 loads, mul, add, 2 increments, branch)
        self.scalar_instr_per_mac = scalar_instr_per_mac

    def tiled_matmul(self, h):
        """Predicted (retired, cycles, ipc) for the h-hart-sized problem.

        The problem multiplies (h × h/2) by (h/2 × h): h²·(h/2) MACs.
        """
        macs = h * h * (h // 2)
        scalar_instructions = macs * self.scalar_instr_per_mac
        retired = int(scalar_instructions / self.vector_factor)
        cycles = int(retired / (self.cores * self.achieved_ipc_per_core))
        return {
            "retired": retired,
            "cycles": cycles,
            "ipc": round(retired / cycles, 2) if cycles else 0.0,
            "ipc_per_core": round(retired / cycles / self.cores, 3) if cycles else 0.0,
            "peak_fraction": round(
                retired / cycles / self.cores / self.peak_ipc_per_core, 3
            ) if cycles else 0.0,
        }
