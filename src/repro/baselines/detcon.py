"""Deterministic Consistency (DC): a software-only determinism baseline.

Aviram & Ford's *Deterministic Consistency* (PAPERS.md) is the natural
software counterpoint to LBP's hardware determinism claim: instead of an
out-of-order engine that replays the referential order exactly, DC makes
a *conventional* shared-memory machine deterministic by changing the
memory model.  Threads execute in **quanta** between deterministic
synchronization points; within a quantum

* every read returns the value the location held at the *last*
  synchronization point (each thread logically works on a private
  snapshot of shared memory), and
* every write is buffered privately and becomes visible to other
  threads only at the *next* synchronization point,

where the per-thread write sets are **merged in a deterministic order**
(task creation order — program order — not arrival order).  Concurrent
writes to the same location are a *conflict*: deterministically
detectable at the merge, resolved here by task order (Determinator-style
runtimes would fault instead; we record the conflict either way so
callers can choose).

Two things follow, and both are what the E-series tables compare:

1. **Result determinism is free of the schedule.** However the OS
   interleaves, migrates or preempts the quanta, the merged memory after
   each barrier is a pure function of (snapshot, write sets) — contrast
   :mod:`repro.baselines.classic_smp`, where a planted store-order race
   lands differently run to run.
2. **Determinism is paid for in time, not hardware.** Every quantum
   boundary costs a barrier plus a merge proportional to the dirty
   words.  LBP pays neither (the referential order is enforced by the
   rename/result-buffer machinery at full speed); classic SMP pays
   nothing but returns a different cycle count every run.  The timing
   model below makes that three-way comparison quantitative on the same
   task shapes :class:`~repro.baselines.classic_smp.ClassicSMP` accepts.

The model is intentionally analytic, like ``classic_smp`` and
``xeonphi``: it prices an execution, it does not interpret RISC-V.
"""

MASK32 = 0xFFFFFFFF


def merge_quantum(base, write_sets):
    """Deterministically merge one quantum's write sets into *base*.

    *base* is a mapping ``{addr: value}`` (the shared snapshot at the
    last synchronization point); *write_sets* is an iterable of
    ``(task_id, {addr: value})`` pairs in **any** order — the merge is
    ordered by ``task_id``, so presentation order (the nondeterministic
    part of a real run: which thread reached the barrier first) cannot
    influence the result.  Returns ``(merged, conflicts)`` where
    *merged* is a new dict and *conflicts* lists ``(addr, [task_ids])``
    for every location written by more than one task (sorted by
    address; the task in highest program order wins the value, the way
    a "writes merged in thread order" runtime resolves it).
    """
    merged = dict(base)
    writers = {}
    for task_id, writes in sorted(write_sets, key=lambda item: item[0]):
        for addr, value in writes.items():
            merged[addr] = value & MASK32
            writers.setdefault(addr, []).append(task_id)
    conflicts = [(addr, tids) for addr, tids in sorted(writers.items())
                 if len(tids) > 1]
    return merged, conflicts


class DCRunStats:
    """Timing + accounting of one DC execution."""

    def __init__(self, cycles, quanta, barriers, merged_words, conflicts):
        self.cycles = cycles
        self.quanta = quanta
        self.barriers = barriers
        self.merged_words = merged_words
        self.conflicts = conflicts


class DetCon:
    """N-core Deterministic-Consistency machine (analytic model).

    Mirrors the :class:`~repro.baselines.classic_smp.ClassicSMP`
    constructor/API shape so experiment tables can swap models, but has
    **no RNG**: the whole point of the baseline is that every run —
    whatever the physical schedule — prices and merges identically.
    ``seed`` is accepted for API parity and deliberately ignored.

    * ``quantum`` — instructions a task executes between global
      synchronization points;
    * ``barrier_cost`` — cycles per quantum boundary (the deterministic
      scheduling point all tasks synchronize on);
    * ``merge_cost_per_word`` — cycles per dirty word published at a
      boundary (the copy-on-write/diff-merge cost of the DC runtime);
    * ``ipc`` — per-core retire rate between boundaries.
    """

    def __init__(self, num_cores, seed=0, quantum=10_000, barrier_cost=400,
                 merge_cost_per_word=2, ipc=1.0):
        self.num_cores = num_cores
        self.seed = seed  # ignored: DC has no schedule-dependent state
        self.quantum = quantum
        self.barrier_cost = barrier_cost
        self.merge_cost_per_word = merge_cost_per_word
        self.ipc = ipc

    # ---- timing model --------------------------------------------------------

    def run_tasks(self, instruction_counts, write_words_per_task=0):
        """Price the execution of tasks given as instruction counts.

        Tasks are dealt round-robin to cores (the deterministic
        placement classic_smp starts from, minus its migrations).
        Execution proceeds in global quantum rounds: each round, every
        live task runs ``min(quantum, remaining)`` instructions; the
        round closes with one barrier plus the merge of the round's
        dirty words.  ``write_words_per_task`` is the write-set size a
        task publishes per round (int, or a per-task list).

        Returns :class:`DCRunStats`; calling twice — or on a machine
        built with any other ``seed`` — returns identical numbers.
        """
        counts = list(instruction_counts)
        if isinstance(write_words_per_task, int):
            dirty = [write_words_per_task] * len(counts)
        else:
            dirty = list(write_words_per_task)
        remaining = [count / self.ipc for count in counts]
        quantum_cycles = self.quantum / self.ipc
        total = 0.0
        quanta = 0
        barriers = 0
        merged_words = 0
        while any(r > 0 for r in remaining):
            core_time = [0.0] * self.num_cores
            round_dirty = 0
            for tid, left in enumerate(remaining):
                if left <= 0:
                    continue
                work = min(left, quantum_cycles)
                core_time[tid % self.num_cores] += work
                remaining[tid] = left - work
                round_dirty += dirty[tid]
                quanta += 1
            barriers += 1
            merged_words += round_dirty
            total += (max(core_time) + self.barrier_cost
                      + self.merge_cost_per_word * round_dirty)
        return DCRunStats(int(round(total)), quanta, barriers, merged_words,
                          conflicts=[])

    def run_many(self, instruction_counts, runs, write_words_per_task=0):
        """Paper-style (min, avg, max) over *runs* — all three identical.

        The contrast with ``ClassicSMP.run_many``: re-running a DC
        execution re-prices the same deterministic schedule, so the
        spread collapses to a point.
        """
        cycles = self.run_tasks(instruction_counts,
                                write_words_per_task).cycles
        return cycles, float(cycles), cycles

    # ---- memory semantics ----------------------------------------------------

    def run_quanta(self, memory, quanta):
        """Execute tasks with DC memory semantics; returns (memory, stats).

        *memory* is the initial shared state ``{addr: value}``;
        *quanta* is a list of rounds, each a list of ``(task_id,
        instructions, fn)`` where ``fn(snapshot)`` computes the task's
        write set ``{addr: value}`` from a **read-only snapshot** of
        shared memory as of the last synchronization point.  Tasks in a
        round never see each other's writes (reads-from-snapshot), and
        their write sets merge at the round barrier in task-id order —
        shuffling a round's task list is therefore unobservable, which
        :func:`merge_quantum`'s tests pin as commutativity.
        """
        memory = dict(memory)
        total = 0.0
        quanta_run = 0
        merged_words = 0
        all_conflicts = []
        for round_tasks in quanta:
            snapshot = dict(memory)
            write_sets = []
            core_time = [0.0] * self.num_cores
            round_dirty = 0
            for task_id, instructions, fn in round_tasks:
                writes = fn(snapshot)
                write_sets.append((task_id, writes))
                core_time[task_id % self.num_cores] += (
                    instructions / self.ipc)
                round_dirty += len(writes)
                quanta_run += 1
            memory, conflicts = merge_quantum(memory, write_sets)
            all_conflicts.extend(conflicts)
            merged_words += round_dirty
            total += (max(core_time) if core_time else 0.0) \
                + self.barrier_cost \
                + self.merge_cost_per_word * round_dirty
        stats = DCRunStats(int(round(total)), quanta_run, len(quanta),
                           merged_words, all_conflicts)
        return memory, stats


def classic_store_order(memory, write_sets, completion_order):
    """Apply write sets in a *schedule-dependent* order (the contrast).

    Models what a conventional coherent machine commits: the last store
    to an address wins, and "last" is decided by the physical completion
    order of the tasks — exactly the quantity a classic OS-scheduled run
    (:class:`~repro.baselines.classic_smp.ClassicSMP`) perturbs from
    seed to seed.  *completion_order* is a list of task ids; write sets
    apply in that order.  Used by the divergence tests to show the same
    planted store-order case lands differently per classic schedule
    while :func:`merge_quantum` lands identically however it is fed.
    """
    sets = dict(write_sets)
    memory = dict(memory)
    for task_id in completion_order:
        for addr, value in sets[task_id].items():
            memory[addr] = value & MASK32
    return memory
