"""Comparison baselines.

* :mod:`repro.baselines.classic_smp` — a classic interrupt-driven,
  OS-scheduled SMP model used to contrast LBP's cycle determinism
  (experiment E4): same work, same results, but timer interrupts,
  seeded scheduling jitter and thread migrations make every run's timing
  different.
* :mod:`repro.baselines.detcon` — Aviram & Ford's Deterministic
  Consistency model: a *software-only* deterministic alternative that
  buys schedule-independent results with quantum barriers and
  write-set merges, sitting between the other two in the E-series
  tables (LBP: deterministic and fast; DC: deterministic, pays merge
  overhead; classic: fast on average, nondeterministic timing).
* :mod:`repro.baselines.xeonphi` — an analytic Knights-Landing-class
  model standing in for the paper's physical Xeon Phi 7210 (figure 21's
  rightmost bars).
"""

from repro.baselines.classic_smp import ClassicSMP
from repro.baselines.detcon import DetCon, classic_store_order, merge_quantum
from repro.baselines.xeonphi import XeonPhiModel

__all__ = ["ClassicSMP", "DetCon", "XeonPhiModel", "classic_store_order",
           "merge_quantum"]
