"""Command-line interface: compile, disassemble and run DetC programs.

Usage (installed as ``python -m repro``):

    python -m repro compile prog.c               # print assembly
    python -m repro disasm prog.c                # print the final listing
    python -m repro run prog.c --cores 4         # run, print statistics
    python -m repro run prog.c --sim fast        # fast simulator
    python -m repro run prog.c --trace --trace-limit 50
    python -m repro run prog.c --print total,v:8 # dump globals after the run
    python -m repro run prog.c --profile         # cProfile the simulation
    python -m repro experiments --h 16 --cores 4 # figure sweep, parallel
"""

import argparse
import sys

from repro.asm import assemble
from repro.compiler import compile_c
from repro.fastsim import FastLBP
from repro.isa.semantics import to_signed
from repro.machine import LBP, Params


def _read_source(path):
    with open(path) as handle:
        return handle.read()


def _build_program(path):
    if path.endswith(".s") or path.endswith(".S"):
        return assemble(_read_source(path), path)
    return assemble(compile_c(_read_source(path), path), path + ".s")


def cmd_compile(args):
    print(compile_c(_read_source(args.source), args.source))
    return 0


def cmd_disasm(args):
    print(_build_program(args.source).disassembly())
    return 0


def cmd_run(args):
    program = _build_program(args.source)
    params = Params(num_cores=args.cores,
                    trace_enabled=args.trace or args.timeline)
    machine = FastLBP(params) if args.sim == "fast" else LBP(params)
    machine.load(program)
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        stats = machine.run(max_cycles=args.max_cycles)
        profiler.disable()
        print("--- profile (top 20 by cumulative time) ---")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        stats = machine.run(max_cycles=args.max_cycles)

    print("halt     :", getattr(machine, "halt_reason", "exit"))
    print("cycles   :", stats.cycles)
    print("retired  :", stats.retired)
    print("IPC      : %.2f (peak %d)" % (stats.ipc, args.cores))
    print("memory   : %d local, %d remote accesses"
          % (stats.local_accesses, stats.remote_accesses))
    print("teams    : %d forks, %d joins" % (stats.forks, stats.joins))

    if args.print:
        for spec in args.print.split(","):
            name, _, count_text = spec.partition(":")
            count = int(count_text) if count_text else 1
            base = program.symbol(name.strip())
            values = [to_signed(machine.read_word(base + 4 * i))
                      for i in range(count)]
            print("%-8s : %s" % (name.strip(), values if count > 1 else values[0]))

    if args.timeline and hasattr(machine, "trace"):
        from repro.machine.timeline import print_timeline

        print("--- hart timeline ---")
        print_timeline(machine)
    if args.trace and hasattr(machine, "trace"):
        print("--- trace (%d events) ---" % len(machine.trace))
        for line in machine.trace.formatted(limit=args.trace_limit):
            print(line)
    return 0


def cmd_experiments(args):
    from repro.eval import format_rows, run_experiments, run_matmul_experiment
    from repro.workloads.matmul import MATMUL_VERSIONS

    tasks = [
        (version, run_matmul_experiment,
         (version, args.h, args.cores, args.scale, args.sim))
        for version in MATMUL_VERSIONS
    ]
    rows = run_experiments(tasks, jobs=args.jobs)
    print(format_rows(
        rows,
        title="matmul figure — h=%d, %d cores, scale=1/%d, %s sim"
              % (args.h, args.cores, args.scale, args.sim)))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="Deterministic OpenMP / LBP toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="DetC source → assembly")
    p_compile.add_argument("source")
    p_compile.set_defaults(func=cmd_compile)

    p_disasm = sub.add_parser("disasm", help="final instruction listing")
    p_disasm.add_argument("source")
    p_disasm.set_defaults(func=cmd_disasm)

    p_run = sub.add_parser("run", help="simulate a program")
    p_run.add_argument("source", help=".c (DetC) or .s (assembly) file")
    p_run.add_argument("--cores", type=int, default=4)
    p_run.add_argument("--sim", choices=("cycle", "fast"), default="cycle")
    p_run.add_argument("--max-cycles", type=int, default=200_000_000)
    p_run.add_argument("--trace", action="store_true")
    p_run.add_argument("--trace-limit", type=int, default=100)
    p_run.add_argument("--timeline", action="store_true",
                       help="render per-hart activity lanes (implies traces)")
    p_run.add_argument("--print", metavar="NAME[:N],...",
                       help="dump globals after the run")
    p_run.add_argument("--profile", action="store_true",
                       help="run under cProfile; print top-20 cumulative")
    p_run.set_defaults(func=cmd_run)

    p_exp = sub.add_parser(
        "experiments",
        help="run a matmul figure sweep through the parallel runner")
    p_exp.add_argument("--h", type=int, default=16,
                       help="total hart count of the figure (16/64/256)")
    p_exp.add_argument("--cores", type=int, default=4)
    p_exp.add_argument("--scale", type=int, default=1,
                       help="work-scale divisor (see LBP_BENCH_SCALE)")
    p_exp.add_argument("--sim", choices=("cycle", "fast"), default="cycle")
    p_exp.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: one per CPU)")
    p_exp.set_defaults(func=cmd_experiments)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
