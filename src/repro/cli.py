"""Command-line interface: compile, disassemble and run DetC programs.

Usage (installed as ``python -m repro``):

    python -m repro compile prog.c               # print assembly
    python -m repro disasm prog.c                # print the final listing
    python -m repro run prog.c --cores 4         # run, print statistics
    python -m repro check prog.c                 # referential-order races
    python -m repro check prog.c --sync req:4    # request words are sync
    python -m repro check prog.c --shards 4 --json
    python -m repro run prog.c --sim fast        # fast simulator
    python -m repro run prog.c --shards 4        # space-sharded, bit-identical
    python -m repro run prog.c --trace --trace-limit 50
    python -m repro run prog.c --trace-kinds mem_store,fork
    python -m repro run prog.c --metrics         # stall attribution table
    python -m repro run prog.c --metrics-out m.json --stats-json s.json
    python -m repro observe prog.c --perfetto out.json  # ui.perfetto.dev
    python -m repro run prog.c --print total,v:8 # dump globals after the run
    python -m repro run prog.c --profile         # cProfile the simulation
    python -m repro run prog.c --snapshot-every 100000 --snapshot-dir snaps
    python -m repro run prog.c --stop-at-cycle 5000 --snapshot-out pause.lbpsnap
    python -m repro run --resume pause.lbpsnap   # continue, bit-exact
    python -m repro experiments --h 16 --cores 4 # figure sweep, parallel+cached
    python -m repro cache stats --json           # the run cache's footprint
    python -m repro cache gc --max-bytes 100000000  # LRU-evict to a budget
    python -m repro serve --port 8321 --workers 4   # simulation-job daemon
    python -m repro submit prog.c --port 8321 --cores 4  # run via the daemon
    python -m repro submit prog.c --unix /tmp/lbp.sock --stream
"""

import argparse
import os
import sys

from repro.asm import assemble
from repro.compiler import compile_c
from repro.fastsim import FastLBP
from repro.isa.semantics import to_signed
from repro.machine import LBP, Params
from repro.machine.trace import Trace


def _shards(text):
    """``--shards`` argument: a worker count, or ``auto`` to let the
    traffic-driven calibration pick one (see repro.parsim.autotune)."""
    if text == "auto":
        return "auto"
    return int(text)


def _print_shard_telemetry(machine):
    """One line each for the auto-tune decision and the transport used."""
    decision = getattr(machine, "auto_decision", None)
    if decision:
        print("shards   : auto -> %d (%s%s)"
              % (decision["shards"], decision["source"],
                 ", %d candidates" % len(decision["candidates"])
                 if decision.get("source") == "calibration" else ""))
    stats = getattr(machine, "transport_stats", None)
    if stats:
        print("transport: %s  epochs %d (ff %d, %d cycles skipped)  "
              "epoch_wait %.3fs"
              % (stats["transport"], stats["epochs"], stats["ff_epochs"],
                 stats["ff_cycles"], stats["epoch_wait_s"]))


def _read_source(path):
    with open(path) as handle:
        return handle.read()


def _build_program(path):
    if path.endswith(".s") or path.endswith(".S"):
        return assemble(_read_source(path), path)
    return assemble(compile_c(_read_source(path), path), path + ".s")


def cmd_compile(args):
    print(compile_c(_read_source(args.source), args.source))
    return 0


def cmd_disasm(args):
    print(_build_program(args.source).disassembly())
    return 0


def cmd_run(args):
    snapshotting = (args.resume or args.snapshot_every
                    or args.snapshot_out or args.stop_at_cycle is not None)
    if snapshotting and args.sim == "fast":
        print("error: the fast simulator does not support snapshot/resume "
              "(use --sim cycle)", file=sys.stderr)
        return 2
    if args.shards is not None and args.sim == "fast":
        print("error: --shards requires the cycle simulator (--sim cycle)",
              file=sys.stderr)
        return 2
    if args.backend is not None and args.sim == "fast":
        print("error: --backend requires the cycle simulator (--sim cycle)",
              file=sys.stderr)
        return 2
    want_metrics = bool(args.metrics or args.metrics_out)
    if want_metrics and args.sim == "fast":
        print("error: --metrics requires the cycle simulator (--sim cycle): "
              "stall attribution charges stage-cycles the fast simulator "
              "never models", file=sys.stderr)
        return 2
    if args.resume:
        from repro.snapshot import load_snapshot

        machine = load_snapshot(args.resume, backend=args.backend)
        program = machine.program
        if want_metrics and machine.metrics is None:
            # the charge history starts at cycle 0 — an unmetered
            # snapshot cannot grow a consistent stall table mid-run
            print("error: --metrics cannot be enabled mid-run; the "
                  "snapshot was taken without metrics (a metered "
                  "snapshot resumes metered automatically)",
                  file=sys.stderr)
            return 2
        if args.shards is not None and args.shards != 1:
            # a snapshot restores a plain LBP; wrap it so the resumed run
            # (bit-identical either way) executes across shard workers
            from repro.parsim import ShardedLBP

            machine = ShardedLBP(shards=args.shards, master=machine)
    else:
        if not args.source:
            print("error: a source file is required unless --resume is given",
                  file=sys.stderr)
            return 2
        program = _build_program(args.source)
        trace_kinds = None
        if args.trace_kinds:
            trace_kinds = [k.strip() for k in args.trace_kinds.split(",")
                           if k.strip()]
            args.trace = True  # a kind filter implies printing the trace
        trace_enabled = bool(args.trace or args.timeline)
        params = Params(num_cores=args.cores, trace_enabled=trace_enabled)
        if args.sim == "fast":
            machine = FastLBP(params)
        else:
            metrics = args.metrics_interval if want_metrics else None
            machine = LBP(params, trace=Trace(trace_enabled, kinds=trace_kinds),
                          shards=args.shards, metrics=metrics,
                          backend=args.backend)
        machine.load(program)

    run_kwargs = {"max_cycles": args.max_cycles}
    if args.stop_at_cycle is not None:
        run_kwargs["stop_at_cycle"] = args.stop_at_cycle
    if args.snapshot_every:
        from repro.snapshot import save_snapshot

        os.makedirs(args.snapshot_dir, exist_ok=True)

        def periodic_snapshot(m):
            path = os.path.join(
                args.snapshot_dir, "snap_%010d.lbpsnap" % m.cycle)
            save_snapshot(m, path)
            print("snapshot : cycle %d -> %s" % (m.cycle, path))

        run_kwargs["snapshot_every"] = args.snapshot_every
        run_kwargs["snapshot_callback"] = periodic_snapshot

    if args.profile and getattr(machine, "shards", 1) > 1:
        # sharded run: the simulation happens in the worker processes, so
        # a parent-side cProfile would see only pipe reads — profile the
        # representative shard 0 worker instead
        machine.profile_shard_zero = True
        print("profiling : shard 0's worker process (of %d shards); the "
              "other shards run unprofiled" % machine.shards)
        stats = machine.run(**run_kwargs)
    elif args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        stats = machine.run(**run_kwargs)
        profiler.disable()
        print("--- profile (top 20 by cumulative time) ---")
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
    else:
        stats = machine.run(**run_kwargs)

    if args.snapshot_out:
        from repro.snapshot import save_snapshot

        size = save_snapshot(machine, args.snapshot_out)
        print("snapshot : cycle %d -> %s (%d bytes)"
              % (machine.cycle, args.snapshot_out, size))
    if args.stop_at_cycle is not None and not getattr(machine, "halted", True):
        print("paused   : cycle %d (resume with --resume)" % machine.cycle)

    print("halt     :", getattr(machine, "halt_reason", "exit"))
    print("cycles   :", stats.cycles)
    print("retired  :", stats.retired)
    print("IPC      : %.2f (peak %d)" % (stats.ipc, machine.params.num_cores))
    print("memory   : %d local, %d remote accesses"
          % (stats.local_accesses, stats.remote_accesses))
    print("teams    : %d forks, %d joins" % (stats.forks, stats.joins))
    _print_shard_telemetry(machine)

    if args.stats_json:
        _write_stats_json(machine, args.stats_json)
        print("stats    : %s" % args.stats_json)
    if getattr(machine, "metrics", None) is not None:
        from repro.observe import stall_table, write_report_json

        report = machine.metrics_report()
        print("--- stall attribution ---")
        for line in stall_table(report):
            print(line)
        if args.metrics_out:
            write_report_json(report, args.metrics_out)
            print("metrics  : %s (%d windows)"
                  % (args.metrics_out, len(report["windows"])))

    if args.print:
        for spec in args.print.split(","):
            name, _, count_text = spec.partition(":")
            count = int(count_text) if count_text else 1
            base = program.symbol(name.strip())
            values = [to_signed(machine.read_word(base + 4 * i))
                      for i in range(count)]
            print("%-8s : %s" % (name.strip(), values if count > 1 else values[0]))

    if args.timeline and hasattr(machine, "trace"):
        from repro.machine.timeline import print_timeline

        print("--- hart timeline ---")
        print_timeline(machine)
    if args.trace and hasattr(machine, "trace"):
        print("--- trace (%d events) ---" % len(machine.trace))
        for line in machine.trace.formatted(limit=args.trace_limit):
            print(line)
    return 0


def _write_stats_json(machine, path):
    """Dump the full MachineStats (per-hart retirement, memory mix,
    forks/joins) as stable-keyed JSON."""
    import json

    stats = machine.stats
    payload = {
        "summary": stats.summary(),
        "halt_reason": getattr(machine, "halt_reason", None),
        "num_cores": stats.num_cores,
        "harts_per_core": stats.harts_per_core,
        "retired_by_core": stats.retired_by_core(),
        "state": stats.state_dict(),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, sort_keys=True, indent=2)
        handle.write("\n")


def cmd_observe(args):
    """Run under full telemetry; export Perfetto / CSV / JSON views."""
    from repro.observe import (
        stall_table,
        transport_table,
        write_chrome_trace,
        write_report_json,
        write_windows_csv,
    )

    spans = clock = None
    if args.spans:
        from repro.observe import SpanRecorder, clock_anchor

        spans = SpanRecorder()
        root = spans.start("observe", tags={"source": args.source})
    program = _build_program(args.source)
    # the Perfetto hart tracks only need the team-protocol events; a
    # full trace is available for debugging but costs memory on long runs
    kinds = None if args.full_trace else (
        "start", "join", "p_ret", "fork", "ending_signal")
    machine = LBP(
        Params(num_cores=args.cores, trace_enabled=True),
        trace=Trace(True, kinds=kinds),
        shards=args.shards,
        metrics=args.metrics_interval,
    ).load(program)
    if spans is not None:
        import time as _time

        run_span = spans.start("run", parent=root)
        # the sharded engine records per-epoch wait/send/recv child
        # spans in each shard process and merges them back here
        machine.span_ctx = run_span.ctx
        run_start = _time.monotonic()
    stats = machine.run(max_cycles=args.max_cycles)
    if spans is not None:
        run_span.finish(cycles=machine.cycle)
        root.finish()
        clock = clock_anchor(run_start,
                             max(run_span.end_s - run_start, 0.0),
                             stats.cycles)
        shard_spans = getattr(machine, "span_records", None)
        if shard_spans:
            spans.absorb(shard_spans)
    report = machine.metrics_report()

    print("halt     :", machine.halt_reason)
    print("cycles   :", stats.cycles)
    print("retired  :", stats.retired)
    print("IPC      : %.2f (peak %d)" % (stats.ipc, machine.params.num_cores))
    _print_shard_telemetry(machine)
    print("--- stall attribution ---")
    for line in stall_table(report):
        print(line)
    for line in transport_table(getattr(machine, "transport_stats", None)):
        print(line)
    if spans is not None:
        print("spans    : %d recorded (trace %s)"
              % (len(spans), root.trace_id))
    if args.perfetto:
        if spans is not None:
            # merged file: service spans + core timelines on one
            # wall-clock axis (the run anchor maps cycles onto it)
            count = write_chrome_trace(machine, args.perfetto,
                                       spans=spans.records(), clock=clock)
        else:
            count = write_chrome_trace(machine, args.perfetto)
        print("perfetto : %s (%d events; open in ui.perfetto.dev)"
              % (args.perfetto, count))
    if args.csv:
        write_windows_csv(report, args.csv)
        print("csv      : %s (%d windows)" % (args.csv, len(report["windows"])))
    if args.json:
        write_report_json(report, args.json)
        print("json     : %s" % args.json)
    return 0


def cmd_check(args):
    """Run under the referential-order race detector; exit 1 on races."""
    program = _build_program(args.source)
    params = Params(num_cores=args.cores)
    machine = LBP(params, shards=args.shards, sanitize=True)
    machine.load(program)
    try:
        machine.run(max_cycles=args.max_cycles)
    except Exception as exc:  # report observations gathered so far anyway
        print("warning: run ended abnormally: %s" % exc, file=sys.stderr)
    sync = []
    if args.sync:
        for spec in args.sync.split(","):
            spec = spec.strip()
            if not spec:
                continue
            name, _, words_text = spec.partition(":")
            words = int(words_text) if words_text else 1
            sync.append((program.symbol(name.strip()), words * 4))
    report = machine.race_report(sync=sync)
    if args.json:
        print(report.to_json())
    else:
        print(report.format())
    return 1 if report else 0


def cmd_experiments(args):
    from repro.eval import format_rows, run_experiments, run_matmul_experiment
    from repro.workloads.matmul import MATMUL_VERSIONS

    if args.metrics and args.sim == "fast":
        print("error: --metrics requires the cycle simulator (--sim cycle)",
              file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        from repro.snapshot import RunCache

        cache = RunCache(args.cache_dir)
    # sharding changes only wall time, never results — keep it out of the
    # task arguments (and thus the cache key) unless actually requested
    extra = {}
    auto_decision = None
    if args.shards == "auto":
        # calibrate once, in the parent, on the figure's base version —
        # every task then runs with the same concrete shard count, and
        # the decision lands on ExperimentResults.meta for the record
        from repro.eval.figures import calibrate_shards

        shards, auto_decision = calibrate_shards(
            args.h, args.cores, scale=args.scale)
        print("shards   : auto -> %d (%s)"
              % (shards, auto_decision["source"]), file=sys.stderr)
        if shards != 1:
            extra["shards"] = shards
    elif args.shards is not None and args.shards != 1:
        extra["shards"] = args.shards
    if args.metrics:
        # metrics change the row (it grows a stall breakdown), so they
        # are a real task argument and a run-cache key component
        extra["metrics"] = True
    tasks = [
        (version, run_matmul_experiment,
         (version, args.h, args.cores, args.scale, args.sim), extra)
        for version in MATMUL_VERSIONS
    ]
    rows = run_experiments(tasks, jobs=args.jobs, cache=cache)
    if auto_decision is not None:
        rows.meta["auto_shards"] = auto_decision
    if extra.get("shards"):
        # which epoch data plane the sharded tasks ran on (meta only —
        # result rows stay byte-identical across transports)
        from repro.parsim import choose_transport

        rows.meta["shard_transport"] = choose_transport()
    print(format_rows(
        rows,
        title="matmul figure — h=%d, %d cores, scale=1/%d, %s sim"
              % (args.h, args.cores, args.scale, args.sim)))
    print("jobs     : %d worker process(es)" % rows.meta["jobs"],
          file=sys.stderr)
    if cache is not None:
        print("cache    : %d hit(s), %d miss(es) [%s]"
              % (cache.hits, cache.misses, cache.root), file=sys.stderr)
    return 0


def cmd_serve(args):
    """Run the asyncio simulation-job daemon until SIGINT/SIGTERM."""
    import asyncio
    import json
    import signal

    from repro.serve import ServeConfig, SimServer

    quotas = json.loads(args.quotas) if args.quotas else None
    default_quota = None
    if args.default_quota:
        rate_text, _, burst_text = args.default_quota.partition(":")
        default_quota = (float(rate_text), float(burst_text or rate_text))
    config = ServeConfig(
        host=args.host, port=args.port, unix_path=args.unix,
        workers=args.workers, cache_root=args.cache_dir,
        max_cache_bytes=args.max_cache_bytes,
        max_cache_age_s=args.max_cache_age,
        job_timeout=args.job_timeout, retries=args.retries,
        progress_every=args.progress_every,
        quotas=quotas, default_quota=default_quota,
        trace=not args.no_trace, trace_out=args.trace_out,
        flight_dir=args.flight_dir)

    async def main():
        server = SimServer(config)
        await server.start()
        if config.unix_path:
            print("serving  : unix %s" % config.unix_path)
        if server.bound_port is not None:
            print("serving  : http://%s:%d" % (config.host, server.bound_port))
        print("workers  : %d  cache %s" % (config.workers, server.cache.root))
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # non-unix event loop
                signal.signal(signum, lambda *_: stop.set())
        await stop.wait()
        print("draining : %d queued, %d running"
              % (server.table.depth(), server.table.running()))
        await server.drain()
        stats = server.stats()
        print("drained  : %d completed, %d hits, %d coalesced, %d evictions"
              % (stats["jobs"]["completed"], stats["jobs"]["hits"],
                 stats["jobs"]["coalesced"], stats["cache"]["evictions"]))
        if config.trace_out and server.spans is not None:
            print("trace    : %s (%d span(s); open in ui.perfetto.dev)"
                  % (config.trace_out, len(server.spans)))

    asyncio.run(main())
    return 0


def cmd_submit(args):
    """Submit one program to a running daemon; print its result."""
    import json

    from repro.serve import ServeClient, ServeError

    client = ServeClient(host=args.host, port=args.port, unix_path=args.unix)
    job = {
        "source": _read_source(args.source),
        "filename": os.path.basename(args.source),
        "params": {"num_cores": args.cores},
    }
    if args.inputs:
        job["inputs"] = json.loads(args.inputs)
    if args.max_cycles is not None:
        job["max_cycles"] = args.max_cycles
    try:
        if args.stream:
            record = client.submit_one(job, tenant=args.tenant,
                                       priority=args.priority, wait=False)
            if record["status"] == "hit":
                final = record
            else:
                terminal = None
                for event in client.stream(record["id"]):
                    if event["kind"] == "progress":
                        print("progress : cycle %-10d ipc %-6s top stall %s"
                              % (event["cycle"], event["ipc"],
                                 event.get("top_stall", "-")), file=sys.stderr)
                    else:
                        terminal = event
                        terminal["status"] = event["kind"]
                if terminal is None:
                    # the stream ended without a terminal event (daemon
                    # drained, connection dropped): recover the job's
                    # actual fate instead of reporting nothing
                    terminal = client.job(record["id"])
                    terminal.setdefault("status", terminal.get("state"))
                final = terminal
                final.setdefault("key", record.get("key"))
        else:
            final = client.submit_one(job, tenant=args.tenant,
                                      priority=args.priority, wait=True)
    except ServeError as exc:
        print("error    : %s" % exc, file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(final, sort_keys=True))
        return 0 if final.get("value") else 1
    print("status   : %s" % final.get("status"))
    print("key      : %s" % final.get("key"))
    value = final.get("value")
    if not value:
        print("error    : %s" % final.get("error"), file=sys.stderr)
        return 1
    print("cycles   : %s" % value["cycles"])
    print("retired  : %s" % value["retired"])
    print("IPC      : %s" % value["summary"]["ipc"])
    print("digest   : %s" % value["trace_digest"])
    return 0


def cmd_cache(args):
    from repro.snapshot import RunCache

    cache = RunCache(args.cache_dir)
    import json
    import time

    if args.action == "ls":
        rows = cache.entries()
        now = time.time()
        for key, entry_bytes, snap_bytes, mtime in rows:
            print("%s  %8d B entry  %10d B snapshot  %8ds idle"
                  % (key, entry_bytes, snap_bytes, max(0, now - mtime)))
        print("%d entr%s in %s" % (len(rows), "y" if len(rows) == 1 else "ies",
                                   cache.root))
    elif args.action == "clear":
        removed = cache.clear()
        print("removed %d entr%s from %s"
              % (removed, "y" if removed == 1 else "ies", cache.root))
    elif args.action == "gc":
        summary = cache.gc(max_bytes=args.max_bytes, max_age_s=args.max_age)
        if args.json:
            print(json.dumps(summary, sort_keys=True))
        else:
            print("evicted %d entr%s (%d stale tmp file(s) swept); "
                  "%d entr%s / %d B remain in %s"
                  % (summary["evicted"],
                     "y" if summary["evicted"] == 1 else "ies",
                     summary["swept_tmp"], summary["remaining"],
                     "y" if summary["remaining"] == 1 else "ies",
                     summary["remaining_bytes"], cache.root))
    else:  # stats
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, sort_keys=True))
        else:
            for field, value in stats.items():
                print("%-15s: %s" % (field, value))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro", description="Deterministic OpenMP / LBP toolchain")
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="DetC source → assembly")
    p_compile.add_argument("source")
    p_compile.set_defaults(func=cmd_compile)

    p_disasm = sub.add_parser("disasm", help="final instruction listing")
    p_disasm.add_argument("source")
    p_disasm.set_defaults(func=cmd_disasm)

    p_run = sub.add_parser("run", help="simulate a program")
    p_run.add_argument("source", nargs="?",
                       help=".c (DetC) or .s (assembly) file "
                            "(optional with --resume)")
    p_run.add_argument("--cores", type=int, default=4)
    p_run.add_argument("--shards", type=_shards, default=None, metavar="N",
                       help="space-shard the cycle simulator across N worker "
                            "processes (bit-identical results; 1 = "
                            "in-process; 'auto' calibrates a count)")
    p_run.add_argument("--sim", choices=("cycle", "fast"), default="cycle")
    p_run.add_argument("--backend", choices=("soa", "interp"), default=None,
                       help="cycle-simulator execution backend (default: "
                            "soa when numpy is available, else interp); "
                            "results are bit-identical either way")
    p_run.add_argument("--max-cycles", type=int, default=200_000_000)
    p_run.add_argument("--trace", action="store_true")
    p_run.add_argument("--trace-limit", type=int, default=100)
    p_run.add_argument("--trace-kinds", metavar="K1,K2,...",
                       help="record only these event kinds (implies --trace; "
                            "e.g. mem_store,fork,join)")
    p_run.add_argument("--timeline", action="store_true",
                       help="render per-hart activity lanes (implies traces)")
    p_run.add_argument("--print", metavar="NAME[:N],...",
                       help="dump globals after the run")
    p_run.add_argument("--profile", action="store_true",
                       help="run under cProfile; print top-20 cumulative")
    p_run.add_argument("--metrics", action="store_true",
                       help="stall attribution + windowed metrics (cycle "
                            "sim; zero perturbation — traces stay "
                            "bit-exact)")
    p_run.add_argument("--metrics-interval", type=int, default=4096,
                       metavar="K", help="sampling window, in cycles")
    p_run.add_argument("--metrics-out", metavar="PATH",
                       help="write the metrics report as JSON "
                            "(implies --metrics)")
    p_run.add_argument("--stats-json", metavar="PATH",
                       help="dump the full MachineStats (per-hart "
                            "retirement, memory mix, forks/joins) as "
                            "stable-keyed JSON")
    p_run.add_argument("--resume", metavar="SNAPSHOT",
                       help="restore a snapshot file and continue the run "
                            "(bit-exact; cycle sim only)")
    p_run.add_argument("--stop-at-cycle", type=int, metavar="N",
                       help="pause (without halting) at cycle N; combine "
                            "with --snapshot-out to checkpoint")
    p_run.add_argument("--snapshot-out", metavar="PATH",
                       help="write a snapshot of the final/paused machine")
    p_run.add_argument("--snapshot-every", type=int, metavar="N",
                       help="write a periodic snapshot every N cycles")
    p_run.add_argument("--snapshot-dir", default="snapshots",
                       help="directory for --snapshot-every files")
    p_run.set_defaults(func=cmd_run)

    p_obs = sub.add_parser(
        "observe",
        help="run under full telemetry; export Perfetto/CSV/JSON views")
    p_obs.add_argument("source", help=".c (DetC) or .s (assembly) file")
    p_obs.add_argument("--cores", type=int, default=4)
    p_obs.add_argument("--shards", type=_shards, default=None, metavar="N",
                       help="space-shard the metered run (reports are "
                            "byte-identical for any N; 'auto' calibrates)")
    p_obs.add_argument("--max-cycles", type=int, default=200_000_000)
    p_obs.add_argument("--metrics-interval", type=int, default=4096,
                       metavar="K", help="sampling window, in cycles")
    p_obs.add_argument("--perfetto", metavar="PATH",
                       help="write Chrome trace-event JSON "
                            "(open in ui.perfetto.dev)")
    p_obs.add_argument("--csv", metavar="PATH",
                       help="write the windowed metrics as CSV")
    p_obs.add_argument("--json", metavar="PATH",
                       help="write the full metrics report as JSON")
    p_obs.add_argument("--full-trace", action="store_true",
                       help="record every event kind, not just the team "
                            "protocol (more memory, richer trace)")
    p_obs.add_argument("--spans", action="store_true",
                       help="record service spans around the run (and "
                            "per-epoch spans from shard workers); "
                            "--perfetto then writes the merged "
                            "service+core file on one shared clock")
    p_obs.set_defaults(func=cmd_observe)

    p_check = sub.add_parser(
        "check",
        help="run under the referential-order race detector "
             "(exit 1 when races are found)")
    p_check.add_argument("source", help=".c (DetC) or .s (assembly) file")
    p_check.add_argument("--cores", type=int, default=4)
    p_check.add_argument("--shards", type=_shards, default=None, metavar="N",
                         help="space-shard the sanitized run (the merged "
                              "report is byte-identical for any N; 'auto' "
                              "calibrates)")
    p_check.add_argument("--max-cycles", type=int, default=200_000_000)
    p_check.add_argument("--sync", metavar="SYM[:WORDS],...",
                         help="treat these globals as synchronization "
                              "cells (release/acquire request words, "
                              "paper §6) instead of data")
    p_check.add_argument("--json", action="store_true",
                         help="print the machine-readable RaceReport")
    p_check.set_defaults(func=cmd_check)

    p_exp = sub.add_parser(
        "experiments",
        help="run a matmul figure sweep through the parallel runner")
    p_exp.add_argument("--h", type=int, default=16,
                       help="total hart count of the figure (16/64/256)")
    p_exp.add_argument("--cores", type=int, default=4)
    p_exp.add_argument("--scale", type=int, default=1,
                       help="work-scale divisor (see LBP_BENCH_SCALE)")
    p_exp.add_argument("--sim", choices=("cycle", "fast"), default="cycle")
    p_exp.add_argument("--shards", type=_shards, default=None, metavar="N",
                       help="space-shard each cycle simulation across N "
                            "worker processes (results are bit-identical; "
                            "'auto' calibrates once on the base version)")
    p_exp.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: LBP_JOBS or the "
                            "CPU affinity count)")
    p_exp.add_argument("--metrics", action="store_true",
                       help="record stall breakdowns per version (cycle "
                            "sim; rows grow a 'stalls' column)")
    p_exp.add_argument("--no-cache", action="store_true",
                       help="always simulate; skip the run cache")
    p_exp.add_argument("--cache-dir", default=None,
                       help="run-cache root (default: $LBP_CACHE_DIR or "
                            "~/.cache/lbp-repro)")
    p_exp.set_defaults(func=cmd_experiments)

    p_serve = sub.add_parser(
        "serve",
        help="run the async simulation-job daemon over the run cache")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=None,
                         help="TCP port (0 = ephemeral; omit for unix-only)")
    p_serve.add_argument("--unix", metavar="PATH", default=None,
                         help="unix socket path (can combine with --port)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="max concurrent forked simulations")
    p_serve.add_argument("--cache-dir", default=None,
                         help="run-cache root (default: $LBP_CACHE_DIR or "
                              "~/.cache/lbp-repro)")
    p_serve.add_argument("--max-cache-bytes", type=int, default=None,
                         help="LRU-evict the cache to this byte budget")
    p_serve.add_argument("--max-cache-age", type=float, default=None,
                         metavar="S", help="evict entries unused for S seconds")
    p_serve.add_argument("--job-timeout", type=float, default=None,
                         metavar="S", help="kill + retry a simulation after "
                                           "S seconds (default: none)")
    p_serve.add_argument("--retries", type=int, default=1,
                         help="extra attempts after a timeout")
    p_serve.add_argument("--progress-every", type=int, default=None,
                         metavar="CYCLES",
                         help="progress-stream emission interval")
    p_serve.add_argument("--quotas", metavar="JSON",
                         help='per-tenant token buckets, e.g. '
                              '\'{"t1": {"rate": 2, "burst": 10}}\' '
                              "(one token = one scheduled execution; "
                              "hits and coalesced joins are free)")
    p_serve.add_argument("--default-quota", metavar="RATE[:BURST]",
                         help="bucket for tenants not listed in --quotas")
    p_serve.add_argument("--no-trace", action="store_true",
                         help="disable request-path span recording "
                              "(tracing is on by default; results are "
                              "identical either way)")
    p_serve.add_argument("--trace-out", metavar="PATH", default=None,
                         help="write the recorded service spans as a "
                              "Perfetto/Chrome trace file on drain")
    p_serve.add_argument("--flight-dir", metavar="DIR", default=None,
                         help="arm the crash flight recorder: processes "
                              "spill their last-N event rings here as "
                              ".jsonl dumps on worker crash")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="run a program through a `repro serve` daemon")
    p_submit.add_argument("source", help=".c (DetC) or .s (assembly) file")
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=None)
    p_submit.add_argument("--unix", metavar="PATH", default=None)
    p_submit.add_argument("--cores", type=int, default=4)
    p_submit.add_argument("--inputs", metavar="JSON",
                          help="workload-inputs cache-key component")
    p_submit.add_argument("--max-cycles", type=int, default=None)
    p_submit.add_argument("--tenant", default=None)
    p_submit.add_argument("--priority", default=None,
                          choices=("interactive", "batch", "bulk"))
    p_submit.add_argument("--stream", action="store_true",
                          help="stream progress events while the job runs")
    p_submit.add_argument("--json", action="store_true",
                          help="print the final record as JSON")
    p_submit.set_defaults(func=cmd_submit)

    p_cache = sub.add_parser(
        "cache",
        help="inspect, garbage-collect or clear the content-addressed "
             "run cache")
    p_cache.add_argument("action", choices=("ls", "clear", "stats", "gc"))
    p_cache.add_argument("--cache-dir", default=None,
                         help="run-cache root (default: $LBP_CACHE_DIR or "
                              "~/.cache/lbp-repro)")
    p_cache.add_argument("--max-bytes", type=int, default=None, metavar="N",
                         help="gc: evict least-recently-used entries until "
                              "entries + snapshots fit N bytes")
    p_cache.add_argument("--max-age", type=float, default=None, metavar="S",
                         help="gc: evict entries not used for S seconds")
    p_cache.add_argument("--json", action="store_true",
                         help="stats/gc: machine-readable JSON output")
    p_cache.set_defaults(func=cmd_cache)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
