"""The LBP physical address map, shared by assembler, compiler and machine.

The paper (fig. 13) gives each core three memory banks: a code bank, a
local bank holding the core's four hart stacks, and one slice of the
globally shared memory.  We realise that as three address windows:

* ``CODE``   — ``0x0000_0000 ..`` : the program image, replicated in every
  core's code bank (a core only ever fetches from its own copy).
* ``LOCAL``  — ``0x4000_0000 ..`` : core-private; the same address names a
  different physical bank on every core.  Divided into four hart stacks.
  The top ``CV_AREA_SIZE`` bytes of each stack are the hart's continuation
  -value area, addressed by ``p_swcv``/``p_lwcv``.
* ``GLOBAL`` — ``0x8000_0000 ..`` : the shared space, statically
  partitioned into one bank per core; remote banks are reached through the
  r1/r2/r3 router tree.

Everything here is pure data so all packages can import it without cycles.
"""

CODE_BASE = 0x00000000
CODE_SIZE = 1 << 20          # 1 MiB program image

LOCAL_BASE = 0x40000000
LOCAL_SIZE = 1 << 16         # 64 KiB local bank per core
HARTS_PER_CORE = 4
STACK_SIZE = LOCAL_SIZE // HARTS_PER_CORE
CV_AREA_SIZE = 64            # continuation-value area at the top of a stack

GLOBAL_BASE = 0x80000000
GLOBAL_BANK_SIZE = 1 << 20   # 1 MiB shared bank per core

# Memory-mapped I/O request window: one word per hart inside each
# controller's shared bank (see machine/io.py).
IO_REQUEST_OFFSET = GLOBAL_BANK_SIZE - 4096


def hart_stack_top(hart):
    """Local-bank address one past hart *hart*'s stack (0..3)."""
    return LOCAL_BASE + (hart + 1) * STACK_SIZE


def hart_cv_base(hart):
    """Local-bank address of hart *hart*'s continuation-value area."""
    return hart_stack_top(hart) - CV_AREA_SIZE


def hart_initial_sp(hart):
    """Initial stack pointer of hart *hart* (just below the CV area)."""
    return hart_cv_base(hart)


def global_bank_base(core):
    """Base address of core *core*'s shared-memory bank."""
    return GLOBAL_BASE + core * GLOBAL_BANK_SIZE


def owner_core_of(addr, num_cores):
    """Which core's shared bank holds global address *addr* (or None)."""
    if addr < GLOBAL_BASE:
        return None
    core = (addr - GLOBAL_BASE) // GLOBAL_BANK_SIZE
    if core >= num_cores:
        return None
    return core


def is_code(addr):
    return CODE_BASE <= addr < CODE_BASE + CODE_SIZE


def is_local(addr):
    return LOCAL_BASE <= addr < LOCAL_BASE + LOCAL_SIZE


def is_global(addr):
    return addr >= GLOBAL_BASE
