"""The DetC preprocessor.

Supports what the paper's listings need:

* ``//`` and ``/* */`` comments;
* object-like and function-like ``#define`` / ``#undef`` with recursive
  (fix-point) expansion and a self-reference guard;
* ``#include <det_omp.h>`` (switches on the Deterministic OpenMP runtime)
  and a whitelist of harmless standard headers that expand to nothing;
* ``#ifdef`` / ``#ifndef`` / ``#else`` / ``#endif``;
* ``#pragma omp parallel for`` / ``parallel sections`` / ``section``,
  rewritten into the reserved markers ``__OMP_PARALLEL_FOR__``,
  ``__OMP_PARALLEL_SECTIONS__`` and ``__OMP_SECTION__`` that the parser
  understands.

Output: the preprocessed source plus a flag telling whether det_omp.h was
included.
"""

import re

from repro.compiler.errors import CompileError

_IGNORED_HEADERS = {"stdio.h", "stdlib.h", "string.h", "stdint.h", "omp.h"}

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_REDUCTION_OPS = {"+": "add", "*": "mul", "&": "and", "|": "or", "^": "xor"}

_PRAGMA_FOR_REDUCTION = re.compile(
    r"^omp\s+parallel\s+for\s+reduction\s*\(\s*([+*&|^])\s*:\s*(\w+)\s*\)")

_PRAGMA_MAP = [
    (re.compile(r"^omp\s+parallel\s+for\b"), "__OMP_PARALLEL_FOR__"),
    (re.compile(r"^omp\s+parallel\s+sections\b"), "__OMP_PARALLEL_SECTIONS__"),
    (re.compile(r"^omp\s+section\b"), "__OMP_SECTION__"),
]


class Macro:
    __slots__ = ("name", "params", "body")

    def __init__(self, name, params, body):
        self.name = name
        self.params = params  # None = object-like
        self.body = body


def strip_comments(text):
    """Remove // and /* */ comments (newlines inside /* */ preserved)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                raise CompileError("unterminated /* comment")
            out.append("\n" * text.count("\n", i, j + 2))
            i = j + 2
        elif ch in "'\"":
            quote = ch
            out.append(ch)
            i += 1
            while i < n and text[i] != quote:
                out.append(text[i])
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i + 1])
                    i += 1
                i += 1
            if i < n:
                out.append(text[i])
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class Preprocessor:
    def __init__(self, source_name="<c>", predefined=None):
        self.source_name = source_name
        self.macros = {}
        self.det_omp_included = False
        if predefined:
            for name, value in predefined.items():
                self.macros[name] = Macro(name, None, str(value))

    # ---- macro expansion ----------------------------------------------------

    def _expand(self, text, line, active=frozenset()):
        """One full expansion pass over *text* (recursive per macro)."""
        out = []
        i, n = 0, len(text)
        while i < n:
            match = _IDENT.match(text, i)
            if not match:
                if text[i] in "'\"":
                    j = self._skip_literal(text, i)
                    out.append(text[i:j])
                    i = j
                else:
                    out.append(text[i])
                    i += 1
                continue
            name = match.group(0)
            i = match.end()
            macro = self.macros.get(name)
            if macro is None or name in active:
                out.append(name)
                continue
            if macro.params is None:
                out.append(self._expand(macro.body, line, active | {name}))
                continue
            # function-like: require an argument list
            j = i
            while j < n and text[j] in " \t":
                j += 1
            if j >= n or text[j] != "(":
                out.append(name)
                continue
            args, i = self._parse_args(text, j, line)
            if args == [""] and len(macro.params) <= 1:
                args = [""] * len(macro.params)  # F() — zero or one empty arg
            if len(args) != len(macro.params):
                raise CompileError(
                    "macro %s expects %d arguments, got %d"
                    % (name, len(macro.params), len(args)),
                    line,
                    self.source_name,
                )
            body = macro.body
            expanded_args = [self._expand(a.strip(), line, active) for a in args]
            replaced = self._substitute(body, macro.params, expanded_args)
            out.append(self._expand(replaced, line, active | {name}))
        return "".join(out)

    @staticmethod
    def _skip_literal(text, i):
        quote = text[i]
        j = i + 1
        while j < len(text) and text[j] != quote:
            if text[j] == "\\":
                j += 1
            j += 1
        return min(j + 1, len(text))

    def _parse_args(self, text, i, line):
        """Parse a macro argument list starting at the '(' at *i*."""
        depth = 0
        args = []
        current = []
        j = i
        while j < len(text):
            ch = text[j]
            if ch == "(":
                depth += 1
                if depth > 1:
                    current.append(ch)
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(current))
                    return args, j + 1
                current.append(ch)
            elif ch == "," and depth == 1:
                args.append("".join(current))
                current = []
            elif ch in "'\"":
                k = self._skip_literal(text, j)
                current.append(text[j:k])
                j = k - 1
            else:
                current.append(ch)
            j += 1
        raise CompileError("unterminated macro arguments", line, self.source_name)

    @staticmethod
    def _substitute(body, params, args):
        mapping = dict(zip(params, args))

        def repl(match):
            return mapping.get(match.group(0), match.group(0))

        return _IDENT.sub(repl, body)

    # ---- directives ----------------------------------------------------------

    def _directive(self, stripped, line, skipping):
        parts = stripped[1:].strip()
        if parts.startswith("include"):
            if skipping:
                return None
            target = parts[len("include"):].strip()
            match = re.match(r'[<"]([^>"]+)[>"]', target)
            if not match:
                raise CompileError("bad #include", line, self.source_name)
            header = match.group(1)
            if header == "det_omp.h":
                self.det_omp_included = True
            elif header not in _IGNORED_HEADERS:
                raise CompileError(
                    "cannot include %r (no hosted environment on LBP)" % header,
                    line,
                    self.source_name,
                )
            return None
        if parts.startswith("define"):
            if skipping:
                return None
            rest = parts[len("define"):].strip()
            match = _IDENT.match(rest)
            if not match:
                raise CompileError("bad #define", line, self.source_name)
            name = match.group(0)
            after = rest[match.end():]
            if after.startswith("("):
                close = after.find(")")
                if close < 0:
                    raise CompileError("bad macro parameters", line, self.source_name)
                params = [p.strip() for p in after[1:close].split(",") if p.strip()]
                body = after[close + 1:].strip()
                self.macros[name] = Macro(name, params, body)
            else:
                self.macros[name] = Macro(name, None, after.strip())
            return None
        if parts.startswith("undef"):
            if not skipping:
                self.macros.pop(parts[len("undef"):].strip(), None)
            return None
        if parts.startswith("pragma"):
            if skipping:
                return None
            pragma = parts[len("pragma"):].strip()
            match = _PRAGMA_FOR_REDUCTION.match(pragma)
            if match:
                op, var = match.group(1), match.group(2)
                return "__OMP_PARALLEL_FOR__ __OMP_REDUCTION__ ( __red_%s , %s )" % (
                    _REDUCTION_OPS[op], var)
            for pattern, marker in _PRAGMA_MAP:
                if pattern.match(pragma):
                    return marker
            return None  # unknown pragmas are ignored, like real compilers
        if parts.split()[0] in ("ifdef", "ifndef", "else", "endif", "if"):
            return ("cond", parts)
        raise CompileError("unknown directive %r" % stripped, line, self.source_name)

    def process(self, source):
        """Preprocess *source*; returns text with original line count."""
        source = strip_comments(source)
        # splice continuation lines, preserving line numbers with blanks
        lines = []
        pending = ""
        pending_extra = 0
        for raw in source.split("\n"):
            if raw.endswith("\\"):
                pending += raw[:-1] + " "
                pending_extra += 1
                continue
            lines.append(pending + raw)
            lines.extend([""] * pending_extra)
            pending = ""
            pending_extra = 0
        if pending:
            lines.append(pending)

        out = []
        cond_stack = []  # True = emitting
        for lineno, text in enumerate(lines, 1):
            stripped = text.strip()
            skipping = not all(cond_stack)
            if stripped.startswith("#"):
                word = stripped[1:].strip().split(" ")[0].split("\t")[0]
                if word in ("ifdef", "ifndef"):
                    name = stripped[1:].strip()[len(word):].strip()
                    value = name in self.macros
                    cond_stack.append(value if word == "ifdef" else not value)
                    out.append("")
                    continue
                if word == "if":
                    # minimal: "#if 0" and "#if 1"
                    expr = stripped[1:].strip()[2:].strip()
                    cond_stack.append(expr not in ("0",))
                    out.append("")
                    continue
                if word == "else":
                    if not cond_stack:
                        raise CompileError("#else without #if", lineno, self.source_name)
                    cond_stack[-1] = not cond_stack[-1]
                    out.append("")
                    continue
                if word == "endif":
                    if not cond_stack:
                        raise CompileError("#endif without #if", lineno, self.source_name)
                    cond_stack.pop()
                    out.append("")
                    continue
                result = self._directive(stripped, lineno, skipping)
                out.append(result if isinstance(result, str) else "")
                continue
            if skipping:
                out.append("")
                continue
            out.append(self._expand(text, lineno))
        if cond_stack:
            raise CompileError("unterminated #if", len(lines), self.source_name)
        return "\n".join(out)
