"""DetC's type system.

Small on purpose: 32-bit ints (signed/unsigned), 8-bit chars, pointers,
one-dimensional arrays, structs, function types and void.  All sizes in
bytes; the target is ILP32.
"""


class Type:
    """Base class; concrete types below."""

    size = 0
    align = 1

    def is_integer(self):
        return False

    def is_pointer(self):
        return False

    def is_arith(self):
        return self.is_integer()

    def is_scalar(self):
        return self.is_integer() or self.is_pointer()


class VoidType(Type):
    def __repr__(self):
        return "void"


class IntType(Type):
    """int/unsigned/char — all register-sized at computation time."""

    def __init__(self, size=4, signed=True, name=None):
        self.size = size
        self.align = size
        self.signed = signed
        self.name = name or ("int" if signed else "unsigned")

    def is_integer(self):
        return True

    def __repr__(self):
        return self.name


class PtrType(Type):
    size = 4
    align = 4

    def __init__(self, base):
        self.base = base

    def is_pointer(self):
        return True

    def __repr__(self):
        return "%r*" % (self.base,)


class ArrayType(Type):
    def __init__(self, base, count):
        self.base = base
        self.count = count
        self.size = base.size * count
        self.align = base.align

    def __repr__(self):
        return "%r[%d]" % (self.base, self.count)


class StructType(Type):
    def __init__(self, tag):
        self.tag = tag
        self.fields = []        # [(name, type, offset)]
        self.size = 0
        self.align = 1
        self.complete = False

    def define(self, members):
        """Lay out members (C-style: natural alignment, in order)."""
        offset = 0
        align = 1
        fields = []
        for name, ftype in members:
            offset = (offset + ftype.align - 1) // ftype.align * ftype.align
            fields.append((name, ftype, offset))
            offset += ftype.size
            align = max(align, ftype.align)
        self.fields = fields
        self.align = align
        self.size = (offset + align - 1) // align * align
        self.complete = True

    def field(self, name):
        for fname, ftype, offset in self.fields:
            if fname == name:
                return ftype, offset
        return None

    def __repr__(self):
        return "struct %s" % (self.tag,)


class FuncType(Type):
    size = 4  # as a value: the code address

    def __init__(self, ret, params, variadic=False):
        self.ret = ret
        self.params = params    # [(name, type)]
        self.variadic = variadic

    def __repr__(self):
        return "%r(%s)" % (self.ret, ", ".join(repr(t) for _, t in self.params))


INT = IntType(4, True, "int")
UINT = IntType(4, False, "unsigned")
CHAR = IntType(1, True, "char")
UCHAR = IntType(1, False, "unsigned char")
VOID = VoidType()


def decay(type_):
    """Array-to-pointer and function-to-pointer decay in value contexts."""
    if isinstance(type_, ArrayType):
        return PtrType(type_.base)
    if isinstance(type_, FuncType):
        return PtrType(type_)
    return type_


def is_unsigned_op(lhs, rhs):
    """C usual-arithmetic-conversion verdict for a binary int op."""
    unsigned_l = isinstance(lhs, IntType) and not lhs.signed
    unsigned_r = isinstance(rhs, IntType) and not rhs.signed
    return unsigned_l or unsigned_r
