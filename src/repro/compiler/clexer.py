"""C token stream for the DetC parser."""

from repro.compiler.errors import CompileError

KEYWORDS = frozenset(
    """int unsigned char void struct typedef if else while for do break
    continue return sizeof static const volatile signed long short
    """.split()
)

_PUNCT3 = ("<<=", ">>=", "...")
_PUNCT2 = (
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)
_PUNCT1 = "+-*/%&|^~!<>=?:;,.(){}[]"

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'", '"': '"',
}


class Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%s, %r, line=%d)" % (self.kind, self.value, self.line)


def tokenize(source, source_name="<c>"):
    """Tokenize preprocessed C source. Returns a list of Tokens + EOF."""
    tokens = []
    line = 1
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            literal = source[i:j].rstrip("uUlL")
            try:
                if len(literal) > 1 and literal[0] == "0" and literal[1] in "01234567":
                    value = int(literal, 8)  # C-style octal
                else:
                    value = int(literal, 0)
            except ValueError:
                raise CompileError(
                    "bad numeric literal %r" % source[i:j], line, source_name
                )
            tokens.append(Token("NUM", value, line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "KW" if word in KEYWORDS else "ID"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 2 >= n or source[j + 2] != "'":
                    raise CompileError("bad character literal", line, source_name)
                value = _ESCAPES.get(source[j + 1])
                if value is None:
                    raise CompileError(
                        "bad escape %r" % source[j + 1], line, source_name
                    )
                tokens.append(Token("NUM", ord(value), line))
                i = j + 3
            else:
                if j + 1 >= n or source[j + 1] != "'":
                    raise CompileError("bad character literal", line, source_name)
                tokens.append(Token("NUM", ord(source[j]), line))
                i = j + 2
            continue
        if ch == '"':
            j = i + 1
            parts = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    escaped = _ESCAPES.get(source[j + 1]) if j + 1 < n else None
                    if escaped is None:
                        raise CompileError("bad string escape", line, source_name)
                    parts.append(escaped)
                    j += 2
                else:
                    parts.append(source[j])
                    j += 1
            if j >= n:
                raise CompileError("unterminated string", line, source_name)
            tokens.append(Token("STR", "".join(parts), line))
            i = j + 1
            continue
        three = source[i : i + 3]
        if three in _PUNCT3:
            tokens.append(Token("PUNCT", three, line))
            i += 3
            continue
        two = source[i : i + 2]
        if two in _PUNCT2:
            tokens.append(Token("PUNCT", two, line))
            i += 2
            continue
        if ch in _PUNCT1:
            tokens.append(Token("PUNCT", ch, line))
            i += 1
            continue
        raise CompileError("unexpected character %r" % ch, line, source_name)
    tokens.append(Token("EOF", None, line))
    return tokens
