"""DetC driver: preprocess → parse → generate a whole module.

Also owns everything module-scoped: global/function symbol tables, the
builtin functions (OMP API + LBP intrinsics), parallel-region outlining,
global-data emission and the final assembly assembly-order (functions,
outlined bodies, workers, runtime, ``_start``, data).
"""

from repro import memmap
from repro.asm import assemble
from repro.compiler import cast as A
from repro.compiler import ctypes_ as T
from repro.compiler.codegen import FunctionCodegen, _Region
from repro.compiler.cpp import Preprocessor
from repro.compiler.cparser import parse
from repro.compiler.errors import CompileError
from repro.compiler.errors import CompileError
from repro.detomp import runtime_asm, start_stub_asm, worker_asm
from repro.detomp.runtime import omp_globals_asm


def _walk(node, fn):
    """Generic AST walk (visits every Node attribute recursively)."""
    if node is None:
        return
    fn(node)
    cls = type(node)
    for slot_holder in cls.__mro__:
        for slot in getattr(slot_holder, "__slots__", ()):
            if slot == "line":
                continue
            value = getattr(node, slot, None)
            if isinstance(value, A.Node):
                _walk(value, fn)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, A.Node):
                        _walk(item, fn)


class ModuleCodegen:
    def __init__(self, module_ast, parser, source_name, det_omp, num_cores_hint=64):
        self.ast = module_ast
        self.parser = parser
        self.source_name = source_name
        self.det_omp = det_omp
        self.num_cores_hint = num_cores_hint
        self.global_types = {}
        self.global_banks = {}
        self.func_types = {}
        self.addr_taken = {}
        self.regions = []
        self._label_counter = 0
        self._func_texts = []
        self._worker_texts = []
        self._data_lines = []
        # capture records are emitted after user globals so that user data
        # starts at each bank's base (symmetric per-bank layouts rely on it)
        self._cap_lines = []

    def new_label(self, hint):
        self._label_counter += 1
        return ".L%s_%d" % (hint, self._label_counter)

    def new_region(self, kind):
        region = _Region(len(self.regions), kind)
        self.regions.append(region)
        return region

    # ---- captures -------------------------------------------------------------

    def find_captures(self, fcg, stmts, exclude):
        """Enclosing locals referenced inside a parallel region's body."""
        names = []
        seen = set(exclude)

        def visit(node):
            if isinstance(node, A.Var) and node.name not in seen:
                if fcg.lookup(node.name) is not None:
                    names.append(node.name)
                seen.add(node.name)

        for stmt in stmts:
            _walk(stmt, visit)
        return [(name, fcg.lookup(name).ctype) for name in names]

    # ---- builtins --------------------------------------------------------------

    def builtin(self, name):
        return getattr(self, "_builtin_" + name, None) if name in _BUILTIN_NAMES \
            else None

    def _builtin_omp_set_num_threads(self, fcg, expr, want_value):
        if len(expr.args) != 1:
            fcg.error("omp_set_num_threads takes one argument", expr)
        if not self.det_omp:
            fcg.error("omp_set_num_threads needs #include <det_omp.h>", expr)
        reg, _ = fcg.gen_expr(expr.args[0])
        addr = fcg.alloc_temp(expr)
        fcg.emit("la %s, omp_num_threads" % addr)
        fcg.emit("sw %s, 0(%s)" % (reg, addr))
        fcg.free(addr)
        fcg.free(reg)
        return None, T.VOID

    def _builtin_omp_get_num_threads(self, fcg, expr, want_value):
        if not self.det_omp:
            fcg.error("omp_get_num_threads needs #include <det_omp.h>", expr)
        reg = fcg.alloc_temp(expr)
        fcg.emit("la %s, omp_num_threads" % reg)
        fcg.emit("lw %s, 0(%s)" % (reg, reg))
        return reg, T.INT

    def _builtin_omp_get_thread_num(self, fcg, expr, want_value):
        """The member index — only meaningful inside a parallel region."""
        if fcg.lookup("__idx") is None:
            fcg.error(
                "omp_get_thread_num() is only valid inside a parallel region "
                "body (outside, the initial hart is thread 0)", expr)
        return fcg.gen_expr(A.Var("__idx", expr.line))

    def _builtin___bank_base(self, fcg, expr, want_value):
        if len(expr.args) != 1:
            fcg.error("__bank_base takes one argument", expr)
        arg = expr.args[0]
        if isinstance(arg, A.Num):
            reg = fcg.alloc_temp(expr)
            fcg.emit("li %s, %d" % (reg, memmap.global_bank_base(arg.value)))
            return reg, T.PtrType(T.INT)
        reg, _ = fcg.gen_expr(arg)
        out = fcg.alloc_temp(expr)
        fcg.emit("slli %s, %s, 20" % (out, reg))
        fcg.free(reg)
        base = fcg.alloc_temp(expr)
        fcg.emit("li %s, %d" % (base, memmap.GLOBAL_BASE))
        fcg.emit("add %s, %s, %s" % (out, out, base))
        fcg.free(base)
        return out, T.PtrType(T.INT)

    def _builtin___hart_id(self, fcg, expr, want_value):
        reg = fcg.alloc_temp(expr)
        fcg.emit("p_set %s, zero" % reg)
        fcg.emit("slli %s, %s, 1" % (reg, reg))
        fcg.emit("srli %s, %s, 17" % (reg, reg))
        return reg, T.INT

    def _builtin___p_swre(self, fcg, expr, want_value):
        if len(expr.args) != 3 or not isinstance(expr.args[1], A.Num):
            fcg.error("__p_swre(hart, const_slot, value)", expr)
        hart_reg, _ = fcg.gen_expr(expr.args[0])
        value_reg, _ = fcg.gen_expr(expr.args[2])
        fcg.emit("p_swre %s, %s, %d" % (hart_reg, value_reg, expr.args[1].value))
        fcg.free(hart_reg)
        fcg.free(value_reg)
        return None, T.VOID

    def _builtin___p_lwre(self, fcg, expr, want_value):
        if len(expr.args) != 1 or not isinstance(expr.args[0], A.Num):
            fcg.error("__p_lwre(const_slot)", expr)
        reg = fcg.alloc_temp(expr)
        fcg.emit("p_lwre %s, %d" % (reg, expr.args[0].value))
        return reg, T.INT

    def _builtin___p_syncm(self, fcg, expr, want_value):
        fcg.emit("p_syncm")
        return None, T.VOID

    def _builtin_exit(self, fcg, expr, want_value):
        fcg.emit("li ra, 0")
        fcg.emit("li t0, -1")
        fcg.emit("p_ret")
        return None, T.VOID

    # ---- top-level generation ---------------------------------------------------

    def run(self):
        # symbol tables first (mutual recursion, forward references)
        funcs = []
        for item in self.ast.items:
            if isinstance(item, A.FuncDef):
                self.func_types[item.name] = item.ftype
                if item.body is not None:
                    funcs.append(item)
            elif isinstance(item, A.GlobalVar):
                if item.name in self.global_types:
                    raise CompileError("redefinition of %r" % item.name,
                                       item.line, self.source_name)
                self.global_types[item.name] = item.ctype
                self.global_banks[item.name] = item.bank or 0
        if "main" not in self.func_types:
            raise CompileError("no main function", None, self.source_name)

        for func in funcs:
            self._scan_addr_taken(func.name, func.body)
            fcg = FunctionCodegen(self, func.name, func.ftype, func.body, func.line)
            self._func_texts.append(fcg.generate())

        # regions may create further regions (nested parallelism)
        index = 0
        while index < len(self.regions):
            self._generate_region(self.regions[index])
            index += 1

        self._emit_globals()

        parts = [start_stub_asm()]
        parts.extend(self._func_texts)
        parts.extend(self._worker_texts)
        if self.det_omp or self.regions:
            parts.append(runtime_asm())
        parts.append("\n        .data\n")
        parts.extend(self._data_lines)
        parts.extend(self._cap_lines)
        if self.det_omp or self.regions:
            parts.append(omp_globals_asm())
        return "\n".join(parts)

    def _scan_addr_taken(self, fname, body):
        taken = set()

        def visit(node):
            if isinstance(node, A.AddrOf) and isinstance(node.operand, A.Var):
                taken.add(node.operand.name)

        _walk(body, visit)
        self.addr_taken[fname] = taken

    # ---- parallel regions --------------------------------------------------------

    def _generate_region(self, region):
        body_name = "__omp_body_%d" % region.rid
        worker_name = "__omp_worker_%d" % region.rid
        cap_label = "__omp_cap_%d" % region.rid
        line = 0

        stmts = []
        cap_var = A.Var("__cap", line)
        for name, ctype in region.captures:
            if not ctype.is_scalar():
                raise CompileError(
                    "parallel region captures non-scalar local %r; LBP local "
                    "banks are core-private — use a global (shared bank) "
                    "instead" % name,
                    line, self.source_name)
        for index, (name, ctype) in enumerate(region.captures):
            value = A.Index(cap_var, A.Num(index), line)
            if not isinstance(ctype, T.IntType) or ctype.size != 4:
                value = A.Cast(ctype if ctype.is_scalar() else T.PtrType(T.INT),
                               value, line)
            stmts.append(A.Decl(name, ctype if ctype.is_scalar() else
                                T.PtrType(T.INT), value, line))
        if region.kind == "for":
            idx_expr = A.Var("__idx", line)
            if region.has_start:
                start_value = A.Index(cap_var, A.Num(len(region.captures)), line)
                idx_expr = A.Bin("+", idx_expr, start_value, line)
            stmts.append(A.Decl(region.var, T.INT, idx_expr, line))
            if region.reduction is not None:
                op, red_var = region.reduction
                red_label = "__omp_red_%d" % region.rid
                identities = {"add": 0, "or": 0, "xor": 0, "mul": 1, "and": -1}
                stmts.append(A.Decl(red_var, T.INT,
                                    A.Num(identities[op], line), line))
                stmts.append(region.body)
                # leave this member's partial in the reduction array; the
                # p_ret barrier makes it visible before the join resumes
                stmts.append(A.ExprStmt(
                    A.Assign("=",
                             A.Index(A.Var(red_label, line),
                                     A.Var("__idx", line), line),
                             A.Var(red_var, line), line), line))
                self.global_types.setdefault(
                    red_label, T.ArrayType(T.INT, 4 * 256))
                self._cap_lines.append("        .bank 0")
                self._cap_lines.append("%s:        .space %d"
                                       % (red_label, 4 * 4 * 256))
            else:
                stmts.append(region.body)
        else:
            chain = None
            for section_index in range(len(region.sections) - 1, -1, -1):
                cond = A.Bin("==", A.Var("__idx", line), A.Num(section_index), line)
                chain = A.If(cond, region.sections[section_index], chain, line)
            stmts.append(chain)
        body_block = A.Block(stmts, line)

        ftype = T.FuncType(T.VOID, [("__cap", T.PtrType(T.INT)), ("__idx", T.INT)])
        self._scan_addr_taken(body_name, body_block)
        fcg = FunctionCodegen(self, body_name, ftype, body_block, line,
                              in_region=True)
        self._func_texts.append(fcg.generate())
        self._worker_texts.append(worker_asm(worker_name, body_name))

        slots = max(1, len(region.captures) + (1 if region.has_start else 0))
        self._cap_lines.append("        .bank 0")
        self._cap_lines.append("%s:        .space %d" % (cap_label, 4 * slots))

    # ---- global data ---------------------------------------------------------------

    def _const_or_symbol(self, expr, line):
        """Fold a global initializer item to an int or a symbol name."""
        value = self.parser._try_fold(expr)
        if value is not None:
            return value
        if isinstance(expr, A.Var) and (
            expr.name in self.global_types or expr.name in self.func_types
        ):
            return expr.name
        if isinstance(expr, A.AddrOf) and isinstance(expr.operand, A.Var) \
                and expr.operand.name in self.global_types:
            return expr.operand.name
        raise CompileError("global initializer must be constant", line,
                           self.source_name)

    def _emit_globals(self):
        for item in self.ast.items:
            if not isinstance(item, A.GlobalVar):
                continue
            bank = item.bank or 0
            self._data_lines.append("        .bank %d" % bank)
            self._data_lines.append("        .align 2")
            ctype = item.ctype
            label = item.name
            if item.init is None:
                self._data_lines.append("%s:        .space %d"
                                        % (label, max(ctype.size, 4)))
                continue
            if isinstance(ctype, T.ArrayType):
                self._emit_array_init(label, ctype, item.init, item.line)
            elif isinstance(ctype, T.StructType):
                self._emit_struct_init(label, ctype, item.init, item.line)
            else:
                value = self._const_or_symbol(
                    item.init if not isinstance(item.init, A.InitList)
                    else item.init.items[0], item.line)
                self._data_lines.append("%s:        .word %s" % (label, value))

    def _emit_array_init(self, label, ctype, init, line):
        count = ctype.count
        element = ctype.base
        if element.size not in (1, 4):
            raise CompileError("unsupported array element size", line,
                               self.source_name)
        values = [0] * count
        if not isinstance(init, A.InitList):
            raise CompileError("array initializer must be braced", line,
                               self.source_name)
        cursor = 0
        for item in init.items:
            if isinstance(item, A.RangeInit):
                value = self._const_or_symbol(item.value, line)
                lo, hi = item.lo, item.hi
                if not (0 <= lo <= hi < count):
                    raise CompileError("range initializer out of bounds", line,
                                       self.source_name)
                for position in range(lo, hi + 1):
                    values[position] = value
                cursor = hi + 1
            else:
                if cursor >= count:
                    raise CompileError("too many initializers", line,
                                       self.source_name)
                values[cursor] = self._const_or_symbol(item, line)
                cursor += 1
        directive = ".word" if element.size == 4 else ".byte"
        self._data_lines.append("%s:" % label)
        # compress long runs of equal constants into .space when zero
        index = 0
        while index < count:
            run = index
            while run < count and values[run] == 0 and not isinstance(values[run], str):
                run += 1
            if run - index >= 8:
                self._data_lines.append("        .space %d"
                                        % ((run - index) * element.size))
                index = run
                continue
            chunk = values[index : min(index + 8, count)]
            if 0 in chunk and run > index:
                chunk = values[index:run]
            self._data_lines.append(
                "        %s %s" % (directive, ", ".join(str(v) for v in chunk))
            )
            index += len(chunk)

    def _emit_struct_init(self, label, ctype, init, line):
        if not isinstance(init, A.InitList):
            raise CompileError("struct initializer must be braced", line,
                               self.source_name)
        self._data_lines.append("%s:" % label)
        position = 0
        for (fname, ftype, foffset), item in zip(ctype.fields, init.items):
            if foffset > position:
                self._data_lines.append("        .space %d" % (foffset - position))
                position = foffset
            value = self._const_or_symbol(item, line)
            self._data_lines.append("        .word %s" % value)
            position += 4
        if position < ctype.size:
            self._data_lines.append("        .space %d" % (ctype.size - position))


_BUILTIN_NAMES = frozenset([
    "omp_set_num_threads", "omp_get_num_threads", "omp_get_thread_num",
    "__bank_base", "__hart_id", "__p_swre", "__p_lwre", "__p_syncm", "exit",
])


def compile_c(source, source_name="<c>", defines=None):
    """Compile DetC source to assembly text."""
    cpp = Preprocessor(source_name, predefined=defines)
    preprocessed = cpp.process(source)
    module_ast, parser = parse(preprocessed, source_name)
    codegen = ModuleCodegen(module_ast, parser, source_name, cpp.det_omp_included)
    return codegen.run()


def compile_to_program(source, source_name="<c>", defines=None):
    """Compile DetC source all the way to an assembled Program."""
    asm_text = compile_c(source, source_name, defines)
    return assemble(asm_text, source_name + ".s")
