"""DetC abstract syntax tree node classes.

Plain data holders; all analysis lives in the code generator.  Every node
carries its source line for diagnostics.
"""


class Node:
    __slots__ = ("line",)

    def __init__(self, line=None):
        self.line = line


# ---- top level ----------------------------------------------------------------


class Module(Node):
    __slots__ = ("items",)

    def __init__(self, items):
        super().__init__(None)
        self.items = items


class FuncDef(Node):
    __slots__ = ("name", "ftype", "body")

    def __init__(self, name, ftype, body, line):
        super().__init__(line)
        self.name = name
        self.ftype = ftype
        self.body = body


class GlobalVar(Node):
    __slots__ = ("name", "ctype", "init", "bank")

    def __init__(self, name, ctype, init, bank, line):
        super().__init__(line)
        self.name = name
        self.ctype = ctype
        self.init = init  # None | expr | InitList
        self.bank = bank  # None -> bank 0


class InitList(Node):
    """Brace initializer: items are exprs or RangeInit."""

    __slots__ = ("items",)

    def __init__(self, items, line):
        super().__init__(line)
        self.items = items


class RangeInit(Node):
    """The paper's ``[lo ... hi] = value`` designated range initializer."""

    __slots__ = ("lo", "hi", "value")

    def __init__(self, lo, hi, value, line):
        super().__init__(line)
        self.lo = lo
        self.hi = hi
        self.value = value


# ---- statements -----------------------------------------------------------------


class Block(Node):
    __slots__ = ("stmts",)

    def __init__(self, stmts, line):
        super().__init__(line)
        self.stmts = stmts


class Decl(Node):
    __slots__ = ("name", "ctype", "init")

    def __init__(self, name, ctype, init, line):
        super().__init__(line)
        self.name = name
        self.ctype = ctype
        self.init = init


class DeclList(Node):
    """Several declarators from one declaration, in the *current* scope."""

    __slots__ = ("decls",)

    def __init__(self, decls, line):
        super().__init__(line)
        self.decls = decls


class If(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Node):
    __slots__ = ("body", "cond")

    def __init__(self, body, cond, line):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Node):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(self, init, cond, step, body, line):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


class Empty(Node):
    __slots__ = ()


class ParallelFor(Node):
    """``#pragma omp parallel for`` + canonical for loop.

    ``reduction`` is None or ("add"|"mul"|"and"|"or"|"xor", var_name).
    """

    __slots__ = ("var", "start", "bound", "body", "reduction")

    def __init__(self, var, start, bound, body, line, reduction=None):
        super().__init__(line)
        self.var = var
        self.start = start
        self.bound = bound
        self.body = body
        self.reduction = reduction


class ParallelSections(Node):
    """``#pragma omp parallel sections`` { ``#pragma omp section`` ... }."""

    __slots__ = ("sections",)

    def __init__(self, sections, line):
        super().__init__(line)
        self.sections = sections


# ---- expressions -------------------------------------------------------------------


class Num(Node):
    __slots__ = ("value",)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class Var(Node):
    __slots__ = ("name",)

    def __init__(self, name, line):
        super().__init__(line)
        self.name = name


class Bin(Node):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs, line):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Un(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Assign(Node):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op, lhs, rhs, line):
        super().__init__(line)
        self.op = op  # "=", "+=", ...
        self.lhs = lhs
        self.rhs = rhs


class IncDec(Node):
    __slots__ = ("op", "operand", "post")

    def __init__(self, op, operand, post, line):
        super().__init__(line)
        self.op = op  # "++" or "--"
        self.operand = operand
        self.post = post


class Cond(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class Call(Node):
    __slots__ = ("callee", "args")

    def __init__(self, callee, args, line):
        super().__init__(line)
        self.callee = callee
        self.args = args


class Index(Node):
    __slots__ = ("base", "index")

    def __init__(self, base, index, line):
        super().__init__(line)
        self.base = base
        self.index = index


class Member(Node):
    __slots__ = ("base", "name", "arrow")

    def __init__(self, base, name, arrow, line):
        super().__init__(line)
        self.base = base
        self.name = name
        self.arrow = arrow


class Deref(Node):
    __slots__ = ("operand",)

    def __init__(self, operand, line):
        super().__init__(line)
        self.operand = operand


class AddrOf(Node):
    __slots__ = ("operand",)

    def __init__(self, operand, line):
        super().__init__(line)
        self.operand = operand


class Cast(Node):
    __slots__ = ("ctype", "operand")

    def __init__(self, ctype, operand, line):
        super().__init__(line)
        self.ctype = ctype
        self.operand = operand


class SizeofType(Node):
    __slots__ = ("ctype",)

    def __init__(self, ctype, line):
        super().__init__(line)
        self.ctype = ctype
