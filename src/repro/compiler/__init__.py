"""DetC: a from-scratch C-subset compiler targeting RV32IM + X_PAR.

Pipeline: :mod:`repro.compiler.cpp` (preprocessor: object- and
function-like macros, ``#include <det_omp.h>``, ``#pragma omp``) →
:mod:`repro.compiler.clexer` → :mod:`repro.compiler.cparser` (AST) →
:mod:`repro.compiler.codegen` (assembly, with the Deterministic OpenMP
lowering of ``parallel for`` / ``parallel sections`` described in the
paper's figure 2).

Entry points:

* :func:`compile_c` — C source → assembly text.
* :func:`compile_to_program` — C source → assembled
  :class:`~repro.asm.program.Program`, ready to load into a machine.
"""

from repro.compiler.frontend import CompileError, compile_c, compile_to_program

__all__ = ["CompileError", "compile_c", "compile_to_program"]
