"""Recursive-descent parser for DetC.

Produces the AST of :mod:`repro.compiler.cast`.  Tracks typedef names (to
disambiguate declarations from expressions) and struct tags.  OpenMP
pragmas arrive from the preprocessor as the reserved markers
``__OMP_PARALLEL_FOR__`` / ``__OMP_PARALLEL_SECTIONS__`` /
``__OMP_SECTION__`` and are parsed into :class:`ParallelFor` /
:class:`ParallelSections` nodes here.
"""

from repro.compiler import cast as A
from repro.compiler import ctypes_ as T
from repro.compiler.clexer import tokenize
from repro.compiler.errors import CompileError

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", "&=", "|=", "^=")

_TYPE_KEYWORDS = frozenset(
    ["int", "unsigned", "char", "void", "struct", "signed", "long", "short",
     "const", "volatile", "static"]
)


class Parser:
    def __init__(self, tokens, source_name="<c>"):
        self.tokens = tokens
        self.pos = 0
        self.source_name = source_name
        self.typedefs = {}
        self.structs = {}

    # ---- token helpers ----------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def error(self, message, tok=None):
        tok = tok or self.peek()
        raise CompileError(message, tok.line, self.source_name)

    def accept(self, kind, value=None):
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind, value=None):
        tok = self.accept(kind, value)
        if tok is None:
            self.error(
                "expected %s, got %r" % (value or kind, self.peek().value)
            )
        return tok

    def at_punct(self, value):
        tok = self.peek()
        return tok.kind == "PUNCT" and tok.value == value

    # ---- types --------------------------------------------------------------

    def at_type_start(self):
        tok = self.peek()
        if tok.kind == "KW" and tok.value in _TYPE_KEYWORDS:
            return True
        if tok.kind == "KW" and tok.value == "typedef":
            return True
        return tok.kind == "ID" and tok.value in self.typedefs

    def parse_base_type(self):
        """Parse type specifiers (int/unsigned/char/void/struct/typedef)."""
        signed = None
        base = None
        while True:
            tok = self.peek()
            if tok.kind == "KW" and tok.value in ("const", "volatile", "static"):
                self.next()
                continue
            if tok.kind == "KW" and tok.value == "signed":
                self.next()
                signed = True
                continue
            if tok.kind == "KW" and tok.value == "unsigned":
                self.next()
                signed = False
                continue
            if tok.kind == "KW" and tok.value in ("long", "short"):
                self.next()  # ILP32: both collapse to int
                if base is None:
                    base = "int"
                continue
            if tok.kind == "KW" and tok.value in ("int", "char", "void"):
                self.next()
                base = tok.value
                continue
            if tok.kind == "KW" and tok.value == "struct":
                self.next()
                return self.parse_struct()
            if tok.kind == "ID" and tok.value in self.typedefs and base is None \
                    and signed is None:
                self.next()
                return self.typedefs[tok.value]
            break
        if base == "void":
            return T.VOID
        if base == "char":
            return T.CHAR if signed in (None, True) else T.UCHAR
        if base == "int" or signed is not None:
            return T.INT if signed in (None, True) else T.UINT
        self.error("expected a type")

    def parse_struct(self):
        tag_tok = self.accept("ID")
        tag = tag_tok.value if tag_tok else "__anon%d" % len(self.structs)
        if self.at_punct("{"):
            self.next()
            stype = self.structs.get(tag)
            if stype is None or stype.complete:
                stype = T.StructType(tag)
                self.structs[tag] = stype
            members = []
            while not self.at_punct("}"):
                base = self.parse_base_type()
                while True:
                    ctype, name = self.parse_declarator(base)
                    if name is None:
                        self.error("struct member needs a name")
                    members.append((name, ctype))
                    if not self.accept("PUNCT", ","):
                        break
                self.expect("PUNCT", ";")
            self.expect("PUNCT", "}")
            stype.define(members)
            return stype
        if tag_tok is None:
            self.error("struct needs a tag or a body")
        stype = self.structs.get(tag)
        if stype is None:
            stype = T.StructType(tag)
            self.structs[tag] = stype
        return stype

    def parse_declarator(self, base):
        """Parse ``* ... name [N] (params)`` → (type, name)."""
        ctype = base
        while self.accept("PUNCT", "*"):
            ctype = T.PtrType(ctype)
        name = None
        if self.at_punct("("):
            # function-pointer declarator: (*name)(params)
            self.next()
            self.expect("PUNCT", "*")
            name = self.expect("ID").value
            self.expect("PUNCT", ")")
            params, variadic = self.parse_params()
            return T.PtrType(T.FuncType(ctype, params, variadic)), name
        tok = self.peek()
        if tok.kind == "ID":
            name = self.next().value
        if self.at_punct("("):
            params, variadic = self.parse_params()
            ctype = T.FuncType(ctype, params, variadic)
        while self.at_punct("["):
            self.next()
            if self.at_punct("]"):
                count_expr = None
            else:
                count_expr = self.parse_expr()
            self.expect("PUNCT", "]")
            count = self.fold_const(count_expr) if count_expr is not None else 0
            ctype = T.ArrayType(ctype, count)
        return ctype, name

    def parse_params(self):
        self.expect("PUNCT", "(")
        params = []
        variadic = False
        if self.accept("PUNCT", ")"):
            return params, variadic
        if self.peek().kind == "KW" and self.peek().value == "void" \
                and self.peek(1).kind == "PUNCT" and self.peek(1).value == ")":
            self.next()
            self.expect("PUNCT", ")")
            return params, variadic
        while True:
            if self.accept("PUNCT", "..."):
                variadic = True
                break
            base = self.parse_base_type()
            ctype, name = self.parse_declarator(base)
            ctype = T.decay(ctype)
            params.append((name, ctype))
            if not self.accept("PUNCT", ","):
                break
        self.expect("PUNCT", ")")
        return params, variadic

    def fold_const(self, expr):
        """Evaluate a compile-time constant expression (array sizes...)."""
        value = self._try_fold(expr)
        if value is None:
            self.error("expected a constant expression", expr)
        return value

    def _try_fold(self, expr):
        if isinstance(expr, A.Num):
            return expr.value
        if isinstance(expr, A.SizeofType):
            return expr.ctype.size
        if isinstance(expr, A.Un):
            value = self._try_fold(expr.operand)
            if value is None:
                return None
            if expr.op == "-":
                return -value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return 0 if value else 1
            return None
        if isinstance(expr, A.Bin):
            lhs = self._try_fold(expr.lhs)
            rhs = self._try_fold(expr.rhs)
            if lhs is None or rhs is None:
                return None
            ops = {
                "+": lambda a, b: a + b, "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "/": lambda a, b: a // b if b else 0,
                "%": lambda a, b: a % b if b else 0,
                "<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
                "&": lambda a, b: a & b, "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
                "<": lambda a, b: int(a < b), ">": lambda a, b: int(a > b),
                "<=": lambda a, b: int(a <= b), ">=": lambda a, b: int(a >= b),
                "==": lambda a, b: int(a == b), "!=": lambda a, b: int(a != b),
                "&&": lambda a, b: int(bool(a) and bool(b)),
                "||": lambda a, b: int(bool(a) or bool(b)),
            }
            fn = ops.get(expr.op)
            return fn(lhs, rhs) if fn else None
        return None

    # ---- top level --------------------------------------------------------------

    def parse_module(self):
        items = []
        while self.peek().kind != "EOF":
            if self.accept("KW", "typedef"):
                base = self.parse_base_type()
                ctype, name = self.parse_declarator(base)
                if name is None:
                    self.error("typedef needs a name")
                self.typedefs[name] = ctype
                self.expect("PUNCT", ";")
                continue
            if self.peek().kind == "KW" and self.peek().value == "struct" \
                    and self.peek(1).kind == "ID" \
                    and self.peek(2).kind == "PUNCT" and self.peek(2).value == "{":
                # plain struct definition at file scope
                self.next()
                self.parse_struct()
                self.expect("PUNCT", ";")
                continue
            items.extend(self.parse_external_decl())
        return A.Module(items)

    def parse_external_decl(self):
        line = self.peek().line
        base = self.parse_base_type()
        if self.accept("PUNCT", ";"):
            return []  # bare struct declaration
        results = []
        first = True
        while True:
            ctype, name = self.parse_declarator(base)
            if name is None:
                self.error("declaration needs a name")
            if isinstance(ctype, T.FuncType):
                if first and self.at_punct("{"):
                    body = self.parse_block()
                    results.append(A.FuncDef(name, ctype, body, line))
                    return results
                results.append(A.FuncDef(name, ctype, None, line))  # prototype
            else:
                bank = self.parse_bank_attr()
                init = None
                if self.accept("PUNCT", "="):
                    init = self.parse_initializer()
                results.append(A.GlobalVar(name, ctype, init, bank, line))
            first = False
            if not self.accept("PUNCT", ","):
                break
        self.expect("PUNCT", ";")
        return results

    def parse_bank_attr(self):
        """Optional ``__bank(N)`` placement attribute after a declarator."""
        tok = self.peek()
        if tok.kind == "ID" and tok.value == "__bank":
            self.next()
            self.expect("PUNCT", "(")
            bank = self.fold_const(self.parse_expr())
            self.expect("PUNCT", ")")
            return bank
        return None

    def parse_initializer(self):
        line = self.peek().line
        if not self.at_punct("{"):
            return self.parse_assignment()
        self.next()
        items = []
        while not self.at_punct("}"):
            if self.at_punct("["):
                self.next()
                lo = self.fold_const(self.parse_expr())
                hi = lo
                if self.accept("PUNCT", "..."):
                    hi = self.fold_const(self.parse_expr())
                self.expect("PUNCT", "]")
                self.expect("PUNCT", "=")
                value = self.parse_assignment()
                items.append(A.RangeInit(lo, hi, value, line))
            else:
                items.append(self.parse_assignment())
            if not self.accept("PUNCT", ","):
                break
        self.expect("PUNCT", "}")
        return A.InitList(items, line)

    # ---- statements -----------------------------------------------------------------

    def parse_block(self):
        line = self.expect("PUNCT", "{").line
        stmts = []
        while not self.at_punct("}"):
            stmts.append(self.parse_statement())
        self.expect("PUNCT", "}")
        return A.Block(stmts, line)

    def parse_statement(self):
        tok = self.peek()
        line = tok.line
        if tok.kind == "ID" and tok.value == "__OMP_PARALLEL_FOR__":
            self.next()
            return self.parse_parallel_for()
        if tok.kind == "ID" and tok.value == "__OMP_PARALLEL_SECTIONS__":
            self.next()
            return self.parse_parallel_sections()
        if self.at_punct("{"):
            return self.parse_block()
        if self.accept("PUNCT", ";"):
            return A.Empty(line)
        if tok.kind == "KW":
            if tok.value == "if":
                self.next()
                self.expect("PUNCT", "(")
                cond = self.parse_expr()
                self.expect("PUNCT", ")")
                then = self.parse_statement()
                otherwise = None
                if self.accept("KW", "else"):
                    otherwise = self.parse_statement()
                return A.If(cond, then, otherwise, line)
            if tok.value == "while":
                self.next()
                self.expect("PUNCT", "(")
                cond = self.parse_expr()
                self.expect("PUNCT", ")")
                return A.While(cond, self.parse_statement(), line)
            if tok.value == "do":
                self.next()
                body = self.parse_statement()
                self.expect("KW", "while")
                self.expect("PUNCT", "(")
                cond = self.parse_expr()
                self.expect("PUNCT", ")")
                self.expect("PUNCT", ";")
                return A.DoWhile(body, cond, line)
            if tok.value == "for":
                return self.parse_for()
            if tok.value == "return":
                self.next()
                value = None
                if not self.at_punct(";"):
                    value = self.parse_expr()
                self.expect("PUNCT", ";")
                return A.Return(value, line)
            if tok.value == "break":
                self.next()
                self.expect("PUNCT", ";")
                node = A.Break(line)
                return node
            if tok.value == "continue":
                self.next()
                self.expect("PUNCT", ";")
                return A.Continue(line)
        if self.at_type_start():
            return self.parse_local_decl()
        expr = self.parse_expr()
        self.expect("PUNCT", ";")
        return A.ExprStmt(expr, line)

    def parse_local_decl(self):
        line = self.peek().line
        base = self.parse_base_type()
        decls = []
        while True:
            ctype, name = self.parse_declarator(base)
            if name is None:
                self.error("declaration needs a name")
            init = None
            if self.accept("PUNCT", "="):
                init = self.parse_initializer()
            decls.append(A.Decl(name, ctype, init, line))
            if not self.accept("PUNCT", ","):
                break
        self.expect("PUNCT", ";")
        if len(decls) == 1:
            return decls[0]
        return A.DeclList(decls, line)

    def parse_for(self):
        line = self.expect("KW", "for").line
        self.expect("PUNCT", "(")
        init = None
        if not self.at_punct(";"):
            if self.at_type_start():
                init = self.parse_local_decl()
            else:
                init = A.ExprStmt(self.parse_expr(), line)
                self.expect("PUNCT", ";")
        else:
            self.next()
        if init is None:
            pass
        cond = None
        if not self.at_punct(";"):
            cond = self.parse_expr()
        self.expect("PUNCT", ";")
        step = None
        if not self.at_punct(")"):
            step = self.parse_expr()
        self.expect("PUNCT", ")")
        body = self.parse_statement()
        return A.For(init, cond, step, body, line)

    def parse_parallel_for(self):
        """``#pragma omp parallel for [reduction(...)]`` + canonical loop."""
        reduction = None
        tok = self.peek()
        if tok.kind == "ID" and tok.value == "__OMP_REDUCTION__":
            self.next()
            self.expect("PUNCT", "(")
            op_tok = self.expect("ID")
            if not op_tok.value.startswith("__red_"):
                self.error("bad reduction operator marker")
            self.expect("PUNCT", ",")
            var_tok = self.expect("ID")
            self.expect("PUNCT", ")")
            reduction = (op_tok.value[len("__red_"):], var_tok.value)
        loop = self.parse_statement()
        if not isinstance(loop, A.For):
            self.error("'#pragma omp parallel for' must precede a for loop")
        line = loop.line

        # init: VAR = start  (either expression or declaration)
        var = None
        start = None
        if isinstance(loop.init, A.ExprStmt) and isinstance(loop.init.expr, A.Assign) \
                and loop.init.expr.op == "=" and isinstance(loop.init.expr.lhs, A.Var):
            var = loop.init.expr.lhs.name
            start = loop.init.expr.rhs
        elif isinstance(loop.init, A.Decl):
            var = loop.init.name
            start = loop.init.init
        if var is None or start is None:
            self.error("parallel for needs 'var = start' initialisation")

        # cond: VAR < bound
        if not (isinstance(loop.cond, A.Bin) and loop.cond.op == "<"
                and isinstance(loop.cond.lhs, A.Var) and loop.cond.lhs.name == var):
            self.error("parallel for needs 'var < bound' condition")
        bound = loop.cond.rhs

        # step: var++ / ++var / var += 1 / var = var + 1
        step_ok = False
        step = loop.step
        if isinstance(step, A.IncDec) and step.op == "++" \
                and isinstance(step.operand, A.Var) and step.operand.name == var:
            step_ok = True
        if isinstance(step, A.Assign) and isinstance(step.lhs, A.Var) \
                and step.lhs.name == var:
            if step.op == "+=" and isinstance(step.rhs, A.Num) and step.rhs.value == 1:
                step_ok = True
            if step.op == "=" and isinstance(step.rhs, A.Bin) and step.rhs.op == "+":
                parts = (step.rhs.lhs, step.rhs.rhs)
                if any(isinstance(p, A.Var) and p.name == var for p in parts) and any(
                    isinstance(p, A.Num) and p.value == 1 for p in parts
                ):
                    step_ok = True
        if not step_ok:
            self.error("parallel for needs a unit-increment step")
        return A.ParallelFor(var, start, bound, loop.body, line,
                             reduction=reduction)

    def parse_parallel_sections(self):
        line = self.peek().line
        self.expect("PUNCT", "{")
        sections = []
        while not self.at_punct("}"):
            tok = self.peek()
            if not (tok.kind == "ID" and tok.value == "__OMP_SECTION__"):
                self.error("expected '#pragma omp section' inside parallel sections")
            self.next()
            sections.append(self.parse_statement())
        self.expect("PUNCT", "}")
        if not sections:
            self.error("parallel sections needs at least one section")
        return A.ParallelSections(sections, line)

    # ---- expressions ------------------------------------------------------------------

    def parse_expr(self):
        expr = self.parse_assignment()
        while self.at_punct(","):
            line = self.next().line
            rhs = self.parse_assignment()
            expr = A.Bin(",", expr, rhs, line)
        return expr

    def parse_assignment(self):
        lhs = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "PUNCT" and tok.value in _ASSIGN_OPS:
            self.next()
            rhs = self.parse_assignment()
            return A.Assign(tok.value, lhs, rhs, tok.line)
        return lhs

    def parse_conditional(self):
        cond = self.parse_binary(0)
        if self.at_punct("?"):
            line = self.next().line
            then = self.parse_expr()
            self.expect("PUNCT", ":")
            otherwise = self.parse_conditional()
            return A.Cond(cond, then, otherwise, line)
        return cond

    _LEVELS = [
        ["||"], ["&&"], ["|"], ["^"], ["&"],
        ["==", "!="], ["<", ">", "<=", ">="],
        ["<<", ">>"], ["+", "-"], ["*", "/", "%"],
    ]

    def parse_binary(self, level):
        if level == len(self._LEVELS):
            return self.parse_unary()
        expr = self.parse_binary(level + 1)
        while True:
            tok = self.peek()
            if tok.kind != "PUNCT" or tok.value not in self._LEVELS[level]:
                return expr
            self.next()
            rhs = self.parse_binary(level + 1)
            expr = A.Bin(tok.value, expr, rhs, tok.line)

    def parse_unary(self):
        tok = self.peek()
        line = tok.line
        if tok.kind == "PUNCT":
            if tok.value in ("-", "~", "!"):
                self.next()
                return A.Un(tok.value, self.parse_unary(), line)
            if tok.value == "+":
                self.next()
                return self.parse_unary()
            if tok.value == "*":
                self.next()
                return A.Deref(self.parse_unary(), line)
            if tok.value == "&":
                self.next()
                return A.AddrOf(self.parse_unary(), line)
            if tok.value in ("++", "--"):
                self.next()
                return A.IncDec(tok.value, self.parse_unary(), False, line)
            if tok.value == "(" and self._looks_like_cast():
                self.next()
                base = self.parse_base_type()
                ctype = base
                while self.accept("PUNCT", "*"):
                    ctype = T.PtrType(ctype)
                self.expect("PUNCT", ")")
                return A.Cast(ctype, self.parse_unary(), line)
        if tok.kind == "KW" and tok.value == "sizeof":
            self.next()
            if self.at_punct("(") and self._looks_like_cast():
                self.next()
                base = self.parse_base_type()
                ctype = base
                while self.accept("PUNCT", "*"):
                    ctype = T.PtrType(ctype)
                while self.at_punct("["):
                    self.next()
                    count = self.fold_const(self.parse_expr())
                    self.expect("PUNCT", "]")
                    ctype = T.ArrayType(ctype, count)
                self.expect("PUNCT", ")")
                return A.SizeofType(ctype, line)
            operand = self.parse_unary()
            return A.Un("sizeof", operand, line)
        return self.parse_postfix()

    def _looks_like_cast(self):
        """At '(' — is the next thing a type name?"""
        tok = self.peek(1)
        if tok.kind == "KW" and tok.value in _TYPE_KEYWORDS:
            return True
        return tok.kind == "ID" and tok.value in self.typedefs

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.kind != "PUNCT":
                return expr
            if tok.value == "(":
                line = self.next().line
                args = []
                if not self.at_punct(")"):
                    args.append(self.parse_assignment())
                    while self.accept("PUNCT", ","):
                        args.append(self.parse_assignment())
                self.expect("PUNCT", ")")
                expr = A.Call(expr, args, line)
            elif tok.value == "[":
                line = self.next().line
                index = self.parse_expr()
                self.expect("PUNCT", "]")
                expr = A.Index(expr, index, line)
            elif tok.value == ".":
                line = self.next().line
                name = self.expect("ID").value
                expr = A.Member(expr, name, False, line)
            elif tok.value == "->":
                line = self.next().line
                name = self.expect("ID").value
                expr = A.Member(expr, name, True, line)
            elif tok.value in ("++", "--"):
                line = self.next().line
                expr = A.IncDec(tok.value, expr, True, line)
            else:
                return expr

    def parse_primary(self):
        tok = self.next()
        if tok.kind == "NUM":
            return A.Num(tok.value, tok.line)
        if tok.kind == "ID":
            return A.Var(tok.value, tok.line)
        if tok.kind == "PUNCT" and tok.value == "(":
            expr = self.parse_expr()
            self.expect("PUNCT", ")")
            return expr
        self.error("unexpected token %r in expression" % (tok.value,), tok)


def parse(source, source_name="<c>"):
    """Parse preprocessed DetC source into (Module, Parser)."""
    tokens = tokenize(source, source_name)
    parser = Parser(tokens, source_name)
    return parser.parse_module(), parser
