"""DetC code generation: AST → RV32IM + X_PAR assembly.

Design (simple, predictable, fast enough for the paper's workloads):

* scalar locals and parameters live in callee-saved registers
  (``s0``-``s11``) when possible, so hot loops touch memory only for real
  data; address-taken scalars, local arrays and structs live on the stack;
* expressions evaluate into a five-register temporary pool
  (``t1``-``t5``); temporaries live across a call are spilled around it;
* ``t0`` (team identity) and ``t6`` (fork target) are *reserved* for the
  Deterministic OpenMP protocol and never allocated;
* every ``#pragma omp parallel for`` / ``parallel sections`` is lowered
  exactly as the paper's figure 2: the body is outlined into
  ``__omp_body_N``, wrapped by ``__omp_worker_N`` (which ends with
  ``p_ret``), and launched by ``LBP_parallel_start``; enclosing locals
  referenced by the body are captured *firstprivate* through a per-region
  record in shared bank 0.
"""

from repro import memmap
from repro.compiler import cast as A
from repro.compiler import ctypes_ as T
from repro.compiler.errors import CompileError
from repro.detomp import runtime_asm, start_stub_asm, worker_asm
from repro.detomp.runtime import omp_globals_asm

TEMP_REGS = ("t1", "t2", "t3", "t4", "t5", "a6", "a7")
SREGS = ("s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11")
ARG_REGS = ("a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7")


def _is_pow2(value):
    return value > 0 and (value & (value - 1)) == 0


def _log2(value):
    return value.bit_length() - 1


class _Loc:
    """Where a local lives."""

    __slots__ = ("kind", "reg", "offset", "ctype")

    def __init__(self, kind, ctype, reg=None, offset=None):
        self.kind = kind  # "reg" | "stack"
        self.ctype = ctype
        self.reg = reg
        self.offset = offset


class _Region:
    """One parallel region awaiting body-function generation."""

    __slots__ = ("rid", "kind", "var", "body", "sections", "captures",
                 "has_start", "reduction")

    def __init__(self, rid, kind):
        self.rid = rid
        self.kind = kind  # "for" | "sections"
        self.var = None
        self.body = None
        self.sections = None
        self.captures = []   # [(name, ctype)]
        self.has_start = False
        self.reduction = None  # (op_name, var_name) or None


class FunctionCodegen:
    """Generates one function."""

    def __init__(self, module, name, ftype, body, line, in_region=False):
        self.module = module
        self.name = name
        self.ftype = ftype
        self.body = body
        self.line = line
        #: True while generating an outlined parallel-region body: the
        #: hardware keeps a single successor link per hart for the ordered
        #: p_ret chain, so teams cannot nest (OpenMP's default, too)
        self.in_region = in_region
        self.lines = []
        self.env = [{}]
        self.temps_free = list(TEMP_REGS)
        self.temps_used = []
        self.sregs_free = list(SREGS)
        self.used_sregs = []
        self.stack_cursor = 0          # local-area bytes allocated so far
        self.max_stack = 0
        self.loop_stack = []           # (break_label, continue_label)
        self.ret_label = self.module.new_label("ret_%s" % name)

    # ---- emission helpers ---------------------------------------------------

    def emit(self, text):
        self.lines.append("        " + text)

    def label(self, name):
        self.lines.append(name + ":")

    def error(self, message, node=None):
        line = node.line if node is not None and node.line else self.line
        raise CompileError(message, line, self.module.source_name)

    # ---- register / stack management ---------------------------------------

    def alloc_temp(self, node=None):
        if not self.temps_free:
            self.error("expression too complex (temporaries exhausted)", node)
        reg = self.temps_free.pop(0)
        self.temps_used.append(reg)
        return reg

    def free(self, reg):
        if reg in self.temps_used:
            self.temps_used.remove(reg)
            self.temps_free.insert(0, reg)

    def alloc_stack(self, size, align=4):
        self.stack_cursor = (self.stack_cursor + align - 1) // align * align
        offset = self.stack_cursor
        self.stack_cursor += size
        self.max_stack = max(self.max_stack, self.stack_cursor)
        return offset

    def free_stack(self, mark):
        self.stack_cursor = mark

    def alloc_sreg(self):
        if not self.sregs_free:
            return None
        reg = self.sregs_free.pop(0)
        if reg not in self.used_sregs:
            self.used_sregs.append(reg)
        return reg

    # ---- scope --------------------------------------------------------------

    def push_scope(self):
        self.env.append({})
        return (len(self.env) - 1, list(self.sregs_free), self.stack_cursor)

    def pop_scope(self, mark):
        _, sregs, cursor = mark
        self.env.pop()
        self.sregs_free = sregs
        self.free_stack(cursor)

    def lookup(self, name):
        for scope in reversed(self.env):
            if name in scope:
                return scope[name]
        return None

    def declare_local(self, name, ctype, node=None):
        """Bind a local: s-register for scalars, stack otherwise."""
        scope = self.env[-1]
        if name in scope:
            self.error("redeclaration of %r" % name, node)
        if ctype.is_scalar() and name not in self.module.addr_taken.get(self.name, ()):
            reg = self.alloc_sreg()
            if reg is not None:
                loc = _Loc("reg", ctype, reg=reg)
                scope[name] = loc
                return loc
        offset = self.alloc_stack(max(ctype.size, 4), max(ctype.align, 4))
        loc = _Loc("stack", ctype, offset=offset)
        scope[name] = loc
        return loc

    # ---- main entry -----------------------------------------------------------

    def generate(self):
        params = self.ftype.params
        if len(params) > len(ARG_REGS):
            self.error("more than 8 parameters are not supported")
        # bind parameters, then move incoming argument registers
        moves = []
        for index, (pname, ptype) in enumerate(params):
            if pname is None:
                self.error("unnamed parameter in definition")
            loc = self.declare_local(pname, ptype)
            moves.append((loc, ARG_REGS[index]))
        for loc, areg in moves:
            if loc.kind == "reg":
                self.emit("mv %s, %s" % (loc.reg, areg))
            else:
                self.emit("sw %s, %d(sp)" % (areg, self.frame_offset_placeholder(loc)))
        self.gen_stmt(self.body)
        return self.finish()

    # Stack locals are addressed sp+offset where offset is from the local
    # area base; the local area starts at sp+0, so offsets are final even
    # though the frame size is only known at the end.
    def frame_offset_placeholder(self, loc):
        return loc.offset

    def finish(self):
        """Wrap body lines with prologue/epilogue now that sizes are known."""
        local_area = (self.max_stack + 15) // 16 * 16
        saved = ["ra"] + self.used_sregs
        frame = local_area + len(saved) * 4
        frame = (frame + 15) // 16 * 16
        out = []
        out.append(self.name + ":")
        out.append("        addi sp, sp, -%d" % frame)
        for index, reg in enumerate(saved):
            out.append("        sw %s, %d(sp)" % (reg, local_area + 4 * index))
        out.extend(self.lines)
        out.append(self.ret_label + ":")
        for index, reg in enumerate(saved):
            out.append("        lw %s, %d(sp)" % (reg, local_area + 4 * index))
        out.append("        addi sp, sp, %d" % frame)
        out.append("        ret")
        return "\n".join(out) + "\n"

    # ---- statements -------------------------------------------------------------

    def gen_stmt(self, stmt):
        method = getattr(self, "_stmt_" + type(stmt).__name__, None)
        if method is None:
            self.error("unsupported statement %s" % type(stmt).__name__, stmt)
        method(stmt)

    def _stmt_Block(self, stmt):
        mark = self.push_scope()
        for inner in stmt.stmts:
            self.gen_stmt(inner)
        self.pop_scope(mark)

    def _stmt_Empty(self, stmt):
        pass

    def _stmt_DeclList(self, stmt):
        for decl in stmt.decls:
            self._stmt_Decl(decl)

    def _stmt_Decl(self, stmt):
        ctype = stmt.ctype
        if isinstance(ctype, T.FuncType):
            self.error("local function declarations are not supported", stmt)
        loc = self.declare_local(stmt.name, ctype, stmt)
        if stmt.init is None:
            return
        if isinstance(stmt.init, A.InitList):
            self._init_local_aggregate(loc, ctype, stmt.init)
            return
        reg, rtype = self.gen_expr(stmt.init)
        self.store_to_loc(loc, reg, stmt)
        self.free(reg)

    def _init_local_aggregate(self, loc, ctype, init):
        if not isinstance(ctype, T.ArrayType):
            self.error("brace initializer only supported for arrays here", init)
        if loc.kind != "stack":
            self.error("array local must be on the stack", init)
        element = ctype.base
        addr = self.alloc_temp(init)
        self.emit("addi %s, sp, %d" % (addr, loc.offset))
        offset = 0
        for item in init.items:
            if isinstance(item, A.RangeInit):
                self.error("range initializers only supported on globals", item)
            reg, _ = self.gen_expr(item)
            self.emit("%s %s, %d(%s)"
                      % ("sw" if element.size == 4 else "sb", reg, offset, addr))
            self.free(reg)
            offset += element.size
        addr_end = ctype.size
        zero_needed = addr_end - offset
        pos = offset
        while zero_needed > 0 and element.size == 4:
            self.emit("sw zero, %d(%s)" % (pos, addr))
            pos += 4
            zero_needed -= 4
        self.free(addr)

    def _stmt_ExprStmt(self, stmt):
        reg, _ = self.gen_expr(stmt.expr, want_value=False)
        if reg is not None:
            self.free(reg)

    def _stmt_If(self, stmt):
        else_label = self.module.new_label("else")
        end_label = self.module.new_label("endif")
        self.gen_branch(stmt.cond, else_label, invert=True)
        self.gen_stmt(stmt.then)
        if stmt.otherwise is not None:
            self.emit("j %s" % end_label)
            self.label(else_label)
            self.gen_stmt(stmt.otherwise)
            self.label(end_label)
        else:
            self.label(else_label)

    def _stmt_While(self, stmt):
        top = self.module.new_label("while")
        end = self.module.new_label("endwhile")
        self.label(top)
        self.gen_branch(stmt.cond, end, invert=True)
        self.loop_stack.append((end, top))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.emit("j %s" % top)
        self.label(end)

    def _stmt_DoWhile(self, stmt):
        top = self.module.new_label("do")
        cont = self.module.new_label("docond")
        end = self.module.new_label("enddo")
        self.label(top)
        self.loop_stack.append((end, cont))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.label(cont)
        self.gen_branch(stmt.cond, top, invert=False)
        self.label(end)

    def _stmt_For(self, stmt):
        mark = self.push_scope()
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        top = self.module.new_label("for")
        cont = self.module.new_label("forstep")
        end = self.module.new_label("endfor")
        self.label(top)
        if stmt.cond is not None:
            self.gen_branch(stmt.cond, end, invert=True)
        self.loop_stack.append((end, cont))
        self.gen_stmt(stmt.body)
        self.loop_stack.pop()
        self.label(cont)
        if stmt.step is not None:
            reg, _ = self.gen_expr(stmt.step, want_value=False)
            if reg is not None:
                self.free(reg)
        self.emit("j %s" % top)
        self.label(end)
        self.pop_scope(mark)

    def _stmt_Break(self, stmt):
        if not self.loop_stack:
            self.error("break outside a loop", stmt)
        self.emit("j %s" % self.loop_stack[-1][0])

    def _stmt_Continue(self, stmt):
        if not self.loop_stack:
            self.error("continue outside a loop", stmt)
        self.emit("j %s" % self.loop_stack[-1][1])

    def _stmt_Return(self, stmt):
        if stmt.value is not None:
            reg, _ = self.gen_expr(stmt.value)
            self.emit("mv a0, %s" % reg)
            self.free(reg)
        self.emit("j %s" % self.ret_label)

    def _check_not_nested(self, stmt):
        if self.in_region:
            self.error(
                "nested parallel regions are not supported: each hart keeps "
                "a single successor link for the ordered p_ret chain "
                "(OpenMP nested parallelism is disabled by default as well)",
                stmt)

    def _stmt_ParallelFor(self, stmt):
        self._check_not_nested(stmt)
        region = self.module.new_region("for")
        region.var = stmt.var
        region.body = stmt.body
        region.reduction = stmt.reduction
        exclude = {stmt.var}
        if stmt.reduction is not None:
            # the reduction variable becomes a private accumulator in the
            # body; the enclosing variable is combined after the join
            exclude.add(stmt.reduction[1])
        region.captures = self.module.find_captures(self, [stmt.body],
                                                    exclude=exclude)
        start_const = isinstance(stmt.start, A.Num) and stmt.start.value == 0
        region.has_start = not start_const
        self._emit_region_launch(region, stmt, stmt.start, stmt.bound)

    def _stmt_ParallelSections(self, stmt):
        self._check_not_nested(stmt)
        region = self.module.new_region("sections")
        region.sections = stmt.sections
        region.captures = self.module.find_captures(self, stmt.sections,
                                                    exclude=set())
        region.has_start = False
        self._emit_region_launch(region, stmt, None, A.Num(len(stmt.sections)))

    def _emit_region_launch(self, region, stmt, start, bound):
        cap_label = "__omp_cap_%d" % region.rid
        # write captured locals (and the start offset) into the record
        base = self.alloc_temp(stmt)
        self.emit("la %s, %s" % (base, cap_label))
        for index, (name, _ctype) in enumerate(region.captures):
            loc = self.lookup(name)
            reg, _ = self.gen_expr(A.Var(name, stmt.line))
            self.emit("sw %s, %d(%s)" % (reg, 4 * index, base))
            self.free(reg)
        if region.has_start:
            reg, _ = self.gen_expr(start)
            self.emit("sw %s, %d(%s)" % (reg, 4 * len(region.captures), base))
            self.free(reg)
        self.free(base)
        # team size
        if start is not None and not (isinstance(start, A.Num) and start.value == 0):
            count = A.Bin("-", bound, start, stmt.line)
        else:
            count = bound
        creg, _ = self.gen_expr(count)
        count_slot = None
        if region.reduction is not None:
            count_slot = self.alloc_stack(4)
            self.emit("sw %s, %d(sp)" % (creg, count_slot))
        spilled = self._spill_live_temps(exclude=(creg,))
        self.emit("mv a2, %s" % creg)
        self.free(creg)
        self.emit("la a0, __omp_worker_%d" % region.rid)
        self.emit("la a1, %s" % cap_label)
        self.emit("jal LBP_parallel_start")
        self._reload_spilled(spilled)
        if region.reduction is not None:
            self._emit_reduction_combine(region, stmt, count_slot)

    _REDUCTION_MNEMONIC = {
        "add": "add", "mul": "mul", "and": "and", "or": "or", "xor": "xor",
    }

    def _emit_reduction_combine(self, region, stmt, count_slot):
        """Fold every member's partial (left by the body functions in the
        region's reduction array — made globally visible by the hardware
        barrier) into the enclosing reduction variable."""
        op, var = region.reduction
        mnemonic = self._REDUCTION_MNEMONIC.get(op)
        if mnemonic is None:
            self.error("unsupported reduction operator %r" % op, stmt)
        base = self.alloc_temp(stmt)
        self.emit("la %s, __omp_red_%d" % (base, region.rid))
        count = self.alloc_temp(stmt)
        self.emit("lw %s, %d(sp)" % (count, count_slot))
        acc, _ = self.gen_expr(A.Var(var, stmt.line))
        partial = self.alloc_temp(stmt)
        loop = self.module.new_label("red")
        done = self.module.new_label("redend")
        self.label(loop)
        self.emit("beqz %s, %s" % (count, done))
        self.emit("lw %s, 0(%s)" % (partial, base))
        self.emit("%s %s, %s, %s" % (mnemonic, acc, acc, partial))
        self.emit("addi %s, %s, 4" % (base, base))
        self.emit("addi %s, %s, -1" % (count, count))
        self.emit("j %s" % loop)
        self.label(done)
        place = self.gen_lvalue(A.Var(var, stmt.line))
        self._store_place_keep(place, acc, stmt)
        self._unpin_place(place)
        for reg in (base, count, acc, partial):
            self.free(reg)

    # ---- conditions ------------------------------------------------------------------

    _REL_BRANCH = {
        "==": ("beq", "bne"), "!=": ("bne", "beq"),
        "<": ("blt", "bge"), ">=": ("bge", "blt"),
        ">": ("bgt", "ble"), "<=": ("ble", "bgt"),
    }
    _REL_BRANCH_U = {
        "<": ("bltu", "bgeu"), ">=": ("bgeu", "bltu"),
        ">": ("bgtu", "bleu"), "<=": ("bleu", "bgtu"),
    }

    def gen_branch(self, cond, target, invert):
        """Branch to *target* when cond is true (or false if *invert*)."""
        if isinstance(cond, A.Un) and cond.op == "!":
            self.gen_branch(cond.operand, target, not invert)
            return
        if isinstance(cond, A.Bin) and cond.op in ("&&", "||"):
            is_and = cond.op == "&&"
            if is_and == invert:
                # (!A || !B) → branch if either side fails
                self.gen_branch(cond.lhs, target, invert)
                self.gen_branch(cond.rhs, target, invert)
            else:
                skip = self.module.new_label("sc")
                self.gen_branch(cond.lhs, skip, not invert)
                self.gen_branch(cond.rhs, target, invert)
                self.label(skip)
            return
        if isinstance(cond, A.Bin) and cond.op in self._REL_BRANCH:
            lreg, ltype = self.gen_expr(cond.lhs)
            rreg, rtype = self.gen_expr(cond.rhs)
            unsigned = T.is_unsigned_op(ltype, rtype) or (
                ltype.is_pointer() or rtype.is_pointer()
            )
            table = self._REL_BRANCH_U if unsigned and cond.op in self._REL_BRANCH_U \
                else self._REL_BRANCH
            mnemonic = table[cond.op][1 if invert else 0]
            self.emit("%s %s, %s, %s" % (mnemonic, lreg, rreg, target))
            self.free(lreg)
            self.free(rreg)
            return
        reg, _ = self.gen_expr(cond)
        self.emit("%s %s, %s" % ("beqz" if invert else "bnez", reg, target))
        self.free(reg)

    # ---- expressions ------------------------------------------------------------------

    def gen_expr(self, expr, want_value=True):
        """Generate one expression; returns (reg_or_None, ctype)."""
        method = getattr(self, "_expr_" + type(expr).__name__, None)
        if method is None:
            self.error("unsupported expression %s" % type(expr).__name__, expr)
        return method(expr, want_value)

    def load_const(self, value, node=None):
        reg = self.alloc_temp(node)
        self.emit("li %s, %d" % (reg, value))
        return reg

    def _expr_Num(self, expr, want_value):
        if not want_value:
            return None, T.INT
        return self.load_const(expr.value, expr), T.INT

    def _expr_SizeofType(self, expr, want_value):
        if not want_value:
            return None, T.UINT
        return self.load_const(expr.ctype.size, expr), T.UINT

    def _expr_Var(self, expr, want_value):
        name = expr.name
        loc = self.lookup(name)
        if loc is not None:
            if isinstance(loc.ctype, T.ArrayType):
                reg = self.alloc_temp(expr)
                self.emit("addi %s, sp, %d" % (reg, loc.offset))
                return reg, T.PtrType(loc.ctype.base)
            if loc.kind == "reg":
                if not want_value:
                    return None, loc.ctype
                reg = self.alloc_temp(expr)
                self.emit("mv %s, %s" % (reg, loc.reg))
                return reg, loc.ctype
            reg = self.alloc_temp(expr)
            self.emit("%s %s, %d(sp)"
                      % (self._load_op(loc.ctype), reg, loc.offset))
            return reg, loc.ctype
        # globals and functions
        gtype = self.module.global_types.get(name)
        if gtype is not None:
            reg = self.alloc_temp(expr)
            if isinstance(gtype, T.ArrayType):
                self.emit("la %s, %s" % (reg, name))
                return reg, T.PtrType(gtype.base)
            self.emit("la %s, %s" % (reg, name))
            value_reg = reg
            self.emit("%s %s, 0(%s)" % (self._load_op(gtype), value_reg, reg))
            return value_reg, gtype
        ftype = self.module.func_types.get(name)
        if ftype is not None:
            reg = self.alloc_temp(expr)
            self.emit("la %s, %s" % (reg, name))
            return reg, T.PtrType(ftype)
        self.error("undefined identifier %r" % name, expr)

    @staticmethod
    def _load_op(ctype):
        if ctype.size == 1:
            return "lb" if getattr(ctype, "signed", True) else "lbu"
        if ctype.size == 2:
            return "lh" if getattr(ctype, "signed", True) else "lhu"
        return "lw"

    @staticmethod
    def _store_op(ctype):
        if ctype.size == 1:
            return "sb"
        if ctype.size == 2:
            return "sh"
        return "sw"

    # -- lvalues --

    def gen_lvalue(self, expr):
        """Return ("reg", loc) for register locals or ("mem", reg, off, ctype)."""
        if isinstance(expr, A.Var):
            loc = self.lookup(expr.name)
            if loc is not None:
                if loc.kind == "reg":
                    return ("reg", loc)
                if isinstance(loc.ctype, T.ArrayType):
                    self.error("cannot assign to an array", expr)
                return ("memsp", None, loc.offset, loc.ctype)
            gtype = self.module.global_types.get(expr.name)
            if gtype is not None:
                if isinstance(gtype, T.ArrayType):
                    self.error("cannot assign to an array", expr)
                reg = self.alloc_temp(expr)
                self.emit("la %s, %s" % (reg, expr.name))
                return ("mem", reg, 0, gtype)
            self.error("undefined identifier %r" % expr.name, expr)
        if isinstance(expr, A.Deref):
            reg, ptype = self.gen_expr(expr.operand)
            if not ptype.is_pointer():
                self.error("dereference of a non-pointer", expr)
            return ("mem", reg, 0, ptype.base)
        if isinstance(expr, A.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, A.Member):
            return self._member_lvalue(expr)
        self.error("expression is not assignable", expr)

    def _index_lvalue(self, expr):
        base_reg, base_type = self.gen_expr(expr.base)
        if not base_type.is_pointer():
            self.error("indexing a non-pointer", expr)
        element = base_type.base
        if isinstance(expr.index, A.Num):
            return ("mem", base_reg, expr.index.value * element.size, element)
        idx_reg, _ = self.gen_expr(expr.index)
        scaled = self._scale(idx_reg, element.size, expr)
        self.emit("add %s, %s, %s" % (base_reg, base_reg, scaled))
        if scaled != idx_reg:
            self.free(scaled)
        else:
            self.free(idx_reg)
        return ("mem", base_reg, 0, element)

    def _member_lvalue(self, expr):
        if expr.arrow:
            reg, ptype = self.gen_expr(expr.base)
            if not ptype.is_pointer() or not isinstance(ptype.base, T.StructType):
                self.error("-> on a non-struct-pointer", expr)
            stype = ptype.base
            offset = 0
        else:
            place = self.gen_lvalue(expr.base)
            if place[0] == "memsp":
                stype = place[3]
                reg = self.alloc_temp(expr)
                self.emit("addi %s, sp, %d" % (reg, place[2]))
                offset = 0
            elif place[0] == "mem":
                _, reg, offset, stype = place
            else:
                self.error("cannot take a member of a register value", expr)
            if not isinstance(stype, T.StructType):
                self.error(". on a non-struct", expr)
        field = stype.field(expr.name)
        if field is None:
            self.error("struct %s has no member %r" % (stype.tag, expr.name), expr)
        ftype, foffset = field
        return ("mem", reg, offset + foffset, ftype)

    def _scale(self, reg, size, node):
        """Multiply *reg* by an element size, in place when it is a temp."""
        if size == 1:
            return reg
        if _is_pow2(size):
            if reg in self.temps_used:
                self.emit("slli %s, %s, %d" % (reg, reg, _log2(size)))
                return reg
            out = self.alloc_temp(node)
            self.emit("slli %s, %s, %d" % (out, reg, _log2(size)))
            return out
        size_reg = self.load_const(size, node)
        self.emit("mul %s, %s, %s" % (size_reg, reg, size_reg))
        self.free(reg)
        return size_reg

    def load_from_place(self, place, node):
        kind = place[0]
        if kind == "reg":
            loc = place[1]
            reg = self.alloc_temp(node)
            self.emit("mv %s, %s" % (reg, loc.reg))
            return reg, loc.ctype
        if kind == "memsp":
            _, _, offset, ctype = place
            reg = self.alloc_temp(node)
            self.emit("%s %s, %d(sp)" % (self._load_op(ctype), reg, offset))
            return reg, ctype
        _, reg, offset, ctype = place
        if isinstance(ctype, T.ArrayType):
            if offset:
                self.emit("addi %s, %s, %d" % (reg, reg, offset))
            return reg, T.PtrType(ctype.base)
        if isinstance(ctype, T.StructType):
            if offset:
                self.emit("addi %s, %s, %d" % (reg, reg, offset))
            return reg, T.PtrType(ctype)
        out = self.alloc_temp(node)
        self.emit("%s %s, %d(%s)" % (self._load_op(ctype), out, offset, reg))
        self.free(reg)
        return out, ctype

    def store_to_place(self, place, reg, node):
        kind = place[0]
        if kind == "reg":
            self.emit("mv %s, %s" % (place[1].reg, reg))
            return place[1].ctype
        if kind == "memsp":
            _, _, offset, ctype = place
            self.emit("%s %s, %d(sp)" % (self._store_op(ctype), reg, offset))
            return ctype
        _, addr, offset, ctype = place
        self.emit("%s %s, %d(%s)" % (self._store_op(ctype), reg, offset, addr))
        self.free(addr)
        return ctype

    def store_to_loc(self, loc, reg, node):
        if loc.kind == "reg":
            self.emit("mv %s, %s" % (loc.reg, reg))
        else:
            self.emit("%s %s, %d(sp)" % (self._store_op(loc.ctype), reg, loc.offset))

    # -- operators --

    def _expr_Assign(self, expr, want_value):
        if expr.op == "=":
            rhs_reg, _ = self.gen_expr(expr.rhs)
            place = self.gen_lvalue(expr.lhs)
            ctype = self.store_to_place(place, rhs_reg, expr)
            if want_value:
                return rhs_reg, ctype
            self.free(rhs_reg)
            return None, ctype
        # compound assignment: evaluate place once
        op = expr.op[:-1]
        place = self.gen_lvalue(expr.lhs)
        place = self._pin_place(place)
        cur_reg, ctype = self._load_place_keep(place, expr)
        rhs_reg, rtype = self.gen_expr(expr.rhs)
        result = self._binary_op(op, cur_reg, ctype, rhs_reg, rtype, expr)
        self._store_place_keep(place, result, expr)
        self._unpin_place(place)
        if want_value:
            return result, ctype
        self.free(result)
        return None, ctype

    def _pin_place(self, place):
        return place

    def _unpin_place(self, place):
        if place[0] == "mem":
            self.free(place[1])

    def _load_place_keep(self, place, node):
        """Load without consuming the place's address register."""
        kind = place[0]
        if kind == "reg":
            loc = place[1]
            reg = self.alloc_temp(node)
            self.emit("mv %s, %s" % (reg, loc.reg))
            return reg, loc.ctype
        if kind == "memsp":
            _, _, offset, ctype = place
            reg = self.alloc_temp(node)
            self.emit("%s %s, %d(sp)" % (self._load_op(ctype), reg, offset))
            return reg, ctype
        _, addr, offset, ctype = place
        reg = self.alloc_temp(node)
        self.emit("%s %s, %d(%s)" % (self._load_op(ctype), reg, offset, addr))
        return reg, ctype

    def _store_place_keep(self, place, reg, node):
        kind = place[0]
        if kind == "reg":
            self.emit("mv %s, %s" % (place[1].reg, reg))
        elif kind == "memsp":
            _, _, offset, ctype = place
            self.emit("%s %s, %d(sp)" % (self._store_op(ctype), reg, offset))
        else:
            _, addr, offset, ctype = place
            self.emit("%s %s, %d(%s)" % (self._store_op(ctype), reg, offset, addr))

    def _expr_IncDec(self, expr, want_value):
        place = self.gen_lvalue(expr.operand)
        cur_reg, ctype = self._load_place_keep(place, expr)
        delta = ctype.base.size if ctype.is_pointer() else 1
        if expr.op == "--":
            delta = -delta
        if expr.post and want_value:
            saved = self.alloc_temp(expr)
            self.emit("mv %s, %s" % (saved, cur_reg))
        else:
            saved = None
        self.emit("addi %s, %s, %d" % (cur_reg, cur_reg, delta))
        self._store_place_keep(place, cur_reg, expr)
        self._unpin_place(place)
        if not want_value:
            self.free(cur_reg)
            return None, ctype
        if expr.post:
            self.free(cur_reg)
            return saved, ctype
        return cur_reg, ctype

    def _expr_Bin(self, expr, want_value):
        op = expr.op
        if op == ",":
            reg, _ = self.gen_expr(expr.lhs, want_value=False)
            if reg is not None:
                self.free(reg)
            return self.gen_expr(expr.rhs, want_value)
        if op in ("&&", "||"):
            return self._logical(expr, want_value)
        # constant folding of fully constant subtrees
        lhs_reg, ltype = self.gen_expr(expr.lhs)
        # strength-reduce multiply by power-of-two constant
        if op == "*" and isinstance(expr.rhs, A.Num) and _is_pow2(expr.rhs.value) \
                and ltype.is_integer():
            out = self._result_reg(lhs_reg, expr)
            self.emit("slli %s, %s, %d" % (out, lhs_reg, _log2(expr.rhs.value)))
            if lhs_reg != out:
                self.free(lhs_reg)
            return out, ltype
        if op in ("+", "-") and isinstance(expr.rhs, A.Num) and ltype.is_integer() \
                and -2048 <= (expr.rhs.value if op == "+" else -expr.rhs.value) <= 2047:
            out = self._result_reg(lhs_reg, expr)
            delta = expr.rhs.value if op == "+" else -expr.rhs.value
            self.emit("addi %s, %s, %d" % (out, lhs_reg, delta))
            if lhs_reg != out:
                self.free(lhs_reg)
            return out, ltype
        rhs_reg, rtype = self.gen_expr(expr.rhs)
        result = self._binary_op(op, lhs_reg, ltype, rhs_reg, rtype, expr)
        result_type = self._binary_type(op, ltype, rtype)
        return result, result_type

    @staticmethod
    def _binary_type(op, ltype, rtype):
        if op in ("==", "!=", "<", ">", "<=", ">=", "&&", "||"):
            return T.INT
        if ltype.is_pointer() and rtype.is_pointer():
            return T.INT  # pointer difference
        if ltype.is_pointer():
            return ltype
        if rtype.is_pointer():
            return rtype
        if T.is_unsigned_op(ltype, rtype):
            return T.UINT
        return T.INT

    _SIMPLE_OPS = {
        "+": "add", "-": "sub", "&": "and", "|": "or", "^": "xor",
        "*": "mul", "<<": "sll",
    }

    def _result_reg(self, lhs, node):
        """Reuse the lhs temporary as the destination when possible."""
        if lhs in self.temps_used:
            return lhs
        return self.alloc_temp(node)

    def _binary_op(self, op, lhs, ltype, rhs, rtype, node):
        unsigned = T.is_unsigned_op(ltype, rtype)
        # pointer arithmetic scaling
        if op in ("+", "-") and ltype.is_pointer() and rtype.is_integer():
            rhs = self._scale(rhs, ltype.base.size, node)
            out = self._result_reg(lhs, node)
            self.emit("%s %s, %s, %s" % ("add" if op == "+" else "sub", out, lhs, rhs))
            if lhs != out:
                self.free(lhs)
            self.free(rhs)
            return out
        if op == "+" and rtype.is_pointer() and ltype.is_integer():
            lhs = self._scale(lhs, rtype.base.size, node)
            out = self._result_reg(lhs, node)
            self.emit("add %s, %s, %s" % (out, lhs, rhs))
            if lhs != out:
                self.free(lhs)
            self.free(rhs)
            return out
        if op == "-" and ltype.is_pointer() and rtype.is_pointer():
            out = self._result_reg(lhs, node)
            self.emit("sub %s, %s, %s" % (out, lhs, rhs))
            if _is_pow2(ltype.base.size):
                if ltype.base.size > 1:
                    self.emit("srai %s, %s, %d" % (out, out, _log2(ltype.base.size)))
            else:
                size_reg = self.load_const(ltype.base.size, node)
                self.emit("div %s, %s, %s" % (out, out, size_reg))
                self.free(size_reg)
            if lhs != out:
                self.free(lhs)
            self.free(rhs)
            return out
        out = self._result_reg(lhs, node)
        if op in self._SIMPLE_OPS:
            self.emit("%s %s, %s, %s" % (self._SIMPLE_OPS[op], out, lhs, rhs))
        elif op == ">>":
            mnemonic = "srl" if (isinstance(ltype, T.IntType) and not ltype.signed) \
                else "sra"
            self.emit("%s %s, %s, %s" % (mnemonic, out, lhs, rhs))
        elif op == "/":
            self.emit("%s %s, %s, %s" % ("divu" if unsigned else "div", out, lhs, rhs))
        elif op == "%":
            self.emit("%s %s, %s, %s" % ("remu" if unsigned else "rem", out, lhs, rhs))
        elif op == "<":
            self.emit("%s %s, %s, %s" % ("sltu" if unsigned else "slt", out, lhs, rhs))
        elif op == ">":
            self.emit("%s %s, %s, %s" % ("sltu" if unsigned else "slt", out, rhs, lhs))
        elif op == "<=":
            self.emit("%s %s, %s, %s" % ("sltu" if unsigned else "slt", out, rhs, lhs))
            self.emit("xori %s, %s, 1" % (out, out))
        elif op == ">=":
            self.emit("%s %s, %s, %s" % ("sltu" if unsigned else "slt", out, lhs, rhs))
            self.emit("xori %s, %s, 1" % (out, out))
        elif op == "==":
            self.emit("xor %s, %s, %s" % (out, lhs, rhs))
            self.emit("seqz %s, %s" % (out, out))
        elif op == "!=":
            self.emit("xor %s, %s, %s" % (out, lhs, rhs))
            self.emit("snez %s, %s" % (out, out))
        else:
            self.error("unsupported binary operator %r" % op, node)
        if lhs != out:
            self.free(lhs)
        self.free(rhs)
        return out

    def _logical(self, expr, want_value):
        out = self.alloc_temp(expr)
        false_label = self.module.new_label("lfalse")
        end_label = self.module.new_label("lend")
        self.gen_branch(expr, false_label, invert=True)
        self.emit("li %s, 1" % out)
        self.emit("j %s" % end_label)
        self.label(false_label)
        self.emit("li %s, 0" % out)
        self.label(end_label)
        return out, T.INT

    def _expr_Un(self, expr, want_value):
        if expr.op == "sizeof":
            ctype = self.type_of(expr.operand)
            return self.load_const(ctype.size, expr), T.UINT
        reg, ctype = self.gen_expr(expr.operand)
        out = self._result_reg(reg, expr)
        if expr.op == "-":
            self.emit("neg %s, %s" % (out, reg))
        elif expr.op == "~":
            self.emit("not %s, %s" % (out, reg))
        elif expr.op == "!":
            self.emit("seqz %s, %s" % (out, reg))
            ctype = T.INT
        else:
            self.error("unsupported unary operator %r" % expr.op, expr)
        if reg != out:
            self.free(reg)
        return out, ctype

    def _expr_Cond(self, expr, want_value):
        out = self.alloc_temp(expr)
        else_label = self.module.new_label("celse")
        end_label = self.module.new_label("cend")
        self.gen_branch(expr.cond, else_label, invert=True)
        then_reg, ttype = self.gen_expr(expr.then)
        self.emit("mv %s, %s" % (out, then_reg))
        self.free(then_reg)
        self.emit("j %s" % end_label)
        self.label(else_label)
        else_reg, _ = self.gen_expr(expr.otherwise)
        self.emit("mv %s, %s" % (out, else_reg))
        self.free(else_reg)
        self.label(end_label)
        return out, ttype

    def _expr_Deref(self, expr, want_value):
        place = self.gen_lvalue(expr)
        return self.load_from_place(place, expr)

    def _expr_Index(self, expr, want_value):
        place = self.gen_lvalue(expr)
        return self.load_from_place(place, expr)

    def _expr_Member(self, expr, want_value):
        place = self.gen_lvalue(expr)
        return self.load_from_place(place, expr)

    def _expr_AddrOf(self, expr, want_value):
        operand = expr.operand
        if isinstance(operand, A.Var):
            loc = self.lookup(operand.name)
            if loc is not None:
                if loc.kind == "reg":
                    self.error(
                        "cannot take the address of register local %r "
                        "(mark it address-taken by using &)" % operand.name, expr)
                reg = self.alloc_temp(expr)
                self.emit("addi %s, sp, %d" % (reg, loc.offset))
                return reg, T.PtrType(loc.ctype)
            gtype = self.module.global_types.get(operand.name)
            if gtype is not None:
                reg = self.alloc_temp(expr)
                self.emit("la %s, %s" % (reg, operand.name))
                base = gtype.base if isinstance(gtype, T.ArrayType) else gtype
                return reg, T.PtrType(base if isinstance(gtype, T.ArrayType) else gtype)
            ftype = self.module.func_types.get(operand.name)
            if ftype is not None:
                reg = self.alloc_temp(expr)
                self.emit("la %s, %s" % (reg, operand.name))
                return reg, T.PtrType(ftype)
            self.error("undefined identifier %r" % operand.name, expr)
        place = self.gen_lvalue(operand)
        if place[0] == "memsp":
            reg = self.alloc_temp(expr)
            self.emit("addi %s, sp, %d" % (reg, place[2]))
            return reg, T.PtrType(place[3])
        if place[0] == "mem":
            _, reg, offset, ctype = place
            if offset:
                self.emit("addi %s, %s, %d" % (reg, reg, offset))
            return reg, T.PtrType(ctype)
        self.error("cannot take the address of this expression", expr)

    def _expr_Cast(self, expr, want_value):
        reg, _ = self.gen_expr(expr.operand)
        target = expr.ctype
        if isinstance(target, T.IntType) and target.size == 1:
            self.emit("slli %s, %s, 24" % (reg, reg))
            self.emit("%s %s, %s, 24" % ("srai" if target.signed else "srli", reg, reg))
        return reg, target

    # -- calls --

    def _spill_live_temps(self, exclude=()):
        spilled = []
        for reg in list(self.temps_used):
            if reg in exclude:
                continue
            offset = self.alloc_stack(4)
            self.emit("sw %s, %d(sp)" % (reg, offset))
            spilled.append((reg, offset))
        return spilled

    def _reload_spilled(self, spilled):
        for reg, offset in spilled:
            self.emit("lw %s, %d(sp)" % (reg, offset))
        if spilled:
            self.free_stack(min(offset for _, offset in spilled))

    def _expr_Call(self, expr, want_value):
        callee = expr.callee
        if isinstance(callee, A.Var):
            builtin = self.module.builtin(callee.name)
            if builtin is not None:
                return builtin(self, expr, want_value)
        # evaluate arguments into a private staging area
        if len(expr.args) > 8:
            self.error("more than 8 arguments are not supported", expr)
        mark = self.stack_cursor
        staging = [self.alloc_stack(4) for _ in expr.args]
        for slot, arg in zip(staging, expr.args):
            reg, _ = self.gen_expr(arg)
            self.emit("sw %s, %d(sp)" % (reg, slot))
            self.free(reg)

        direct = None
        ret_type = T.INT
        if isinstance(callee, A.Var) and self.lookup(callee.name) is None \
                and callee.name in self.module.func_types:
            direct = callee.name
            ret_type = self.module.func_types[callee.name].ret
        else:
            fn_reg, ftype = self.gen_expr(callee)
            if isinstance(ftype, T.PtrType) and isinstance(ftype.base, T.FuncType):
                ret_type = ftype.base.ret
            fn_slot = self.alloc_stack(4)
            self.emit("sw %s, %d(sp)" % (fn_reg, fn_slot))
            self.free(fn_reg)

        spilled = self._spill_live_temps()
        for index, slot in enumerate(staging):
            self.emit("lw %s, %d(sp)" % (ARG_REGS[index], slot))
        if direct is not None:
            self.emit("jal %s" % direct)
        else:
            self.emit("lw t1, %d(sp)" % fn_slot)
            self.emit("jalr t1")
        self._reload_spilled(spilled)
        self.free_stack(mark)
        if isinstance(ret_type, T.VoidType) or not want_value:
            return None, ret_type
        out = self.alloc_temp(expr)
        self.emit("mv %s, a0" % out)
        return out, ret_type

    # ---- static typing (for sizeof expr and pointer checks) -------------------

    def type_of(self, expr):
        if isinstance(expr, A.Num):
            return T.INT
        if isinstance(expr, A.Var):
            loc = self.lookup(expr.name)
            if loc is not None:
                return loc.ctype
            gtype = self.module.global_types.get(expr.name)
            if gtype is not None:
                return gtype
            ftype = self.module.func_types.get(expr.name)
            if ftype is not None:
                return ftype
            self.error("undefined identifier %r" % expr.name, expr)
        if isinstance(expr, A.Deref):
            base = T.decay(self.type_of(expr.operand))
            if not base.is_pointer():
                self.error("dereference of non-pointer", expr)
            return base.base
        if isinstance(expr, A.Index):
            base = T.decay(self.type_of(expr.base))
            if not base.is_pointer():
                self.error("indexing a non-pointer", expr)
            return base.base
        if isinstance(expr, A.Member):
            base = self.type_of(expr.base)
            if expr.arrow:
                base = T.decay(base)
                if not base.is_pointer():
                    self.error("-> on non-pointer", expr)
                base = base.base
            if not isinstance(base, T.StructType):
                self.error("member of a non-struct", expr)
            field = base.field(expr.name)
            if field is None:
                self.error("no member %r" % expr.name, expr)
            return field[0]
        if isinstance(expr, A.Cast):
            return expr.ctype
        if isinstance(expr, A.AddrOf):
            return T.PtrType(self.type_of(expr.operand))
        if isinstance(expr, A.Call):
            if isinstance(expr.callee, A.Var) and \
                    expr.callee.name in self.module.func_types:
                return self.module.func_types[expr.callee.name].ret
            return T.INT
        if isinstance(expr, A.Bin):
            return self._binary_type(
                expr.op, T.decay(self.type_of(expr.lhs)),
                T.decay(self.type_of(expr.rhs)))
        if isinstance(expr, (A.Un, A.IncDec)):
            return self.type_of(expr.operand)
        if isinstance(expr, A.Assign):
            return self.type_of(expr.lhs)
        if isinstance(expr, A.Cond):
            return self.type_of(expr.then)
        if isinstance(expr, A.SizeofType):
            return T.UINT
        return T.INT
