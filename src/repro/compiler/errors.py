"""Compiler diagnostics."""


class CompileError(Exception):
    """A DetC front-end or code-generation error with source position."""

    def __init__(self, message, line=None, source_name=None):
        self.message = message
        self.line = line
        self.source_name = source_name
        location = ""
        if source_name:
            location += "%s:" % source_name
        if line is not None:
            location += "%d:" % line
        if location:
            location += " "
        super().__init__(location + message)
